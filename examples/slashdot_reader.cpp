// The paper's Section 2.2 illustration: subscribe to "Slashdot" asking for
// the highest-ranked stories above threshold 4.5 (out of 5), but not more
// than 30 at a time — then leave for a month-long vacation and come back to
// "read the most important bits from the past month".
//
// Build & run:  ./build/examples/slashdot_reader
#include <cstdio>

#include "common/distributions.h"
#include "common/rng.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

using namespace waif;

int main() {
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);
  proxy.attach_to_link(link);

  // Max = 30, Threshold = 4.5: the two complementary volume limits.
  core::TopicConfig config;
  config.options.max = 30;
  config.options.threshold = 4.5;
  config.policy = core::PolicyConfig::on_demand();  // nothing pushed unread
  proxy.add_topic("slashdot", config);
  broker.subscribe("slashdot", proxy, config.options);

  // A month of Slashdot: ~40 stories/day, ranks skewed low (most stories are
  // ordinary), stories stay relevant for three months (they "do not expire
  // too quickly").
  pubsub::Publisher slashdot(broker, "slashdot");
  Rng rng(2005);
  const Exponential gap(static_cast<double>(kDay) / 40.0);
  const UniformReal rank(0.0, 5.0);
  int published = 0;
  int above_threshold = 0;
  for (double t = gap(rng); t < static_cast<double>(30 * kDay); t += gap(rng)) {
    const double story_rank = rank(rng);
    ++published;
    above_threshold += story_rank >= 4.5 ? 1 : 0;
    sim.schedule_at(static_cast<SimTime>(t), [&slashdot, story_rank] {
      slashdot.publish("slashdot", story_rank, days(90.0));
    });
  }

  // The user is on vacation for the whole month; the first read happens on
  // day 30.
  core::LastHopSession session(proxy, channel);
  std::size_t read_count = 0;
  double lowest_rank_read = 5.0;
  sim.schedule_at(30 * kDay, [&] {
    auto stories = session.user_read("slashdot");
    read_count = stories.size();
    for (const auto& story : stories) {
      if (story->rank < lowest_rank_read) lowest_rank_read = story->rank;
    }
  });

  sim.run_until(31 * kDay);

  std::printf("Slashdot month: %d stories published, %d above threshold 4.5\n",
              published, above_threshold);
  std::printf("Back from vacation, one read returned %zu stories "
              "(Max = 30), lowest rank %.2f\n",
              read_count, lowest_rank_read);
  std::printf("Messages over the last hop: %llu (pure on-demand: only what "
              "was read)\n",
              static_cast<unsigned long long>(link.stats().downlink_messages));
  return 0;
}
