// The paper's headline result, live: on a link that is down 90% of the time,
// compare the four forwarding policies over one virtual year and print each
// policy's waste and loss. Buffer-based prefetching (and the adaptive
// Figure-7 policy) keep both near zero where pure on-line wastes ~50% and
// pure on-demand loses most reads.
//
// Build & run:  ./build/examples/flaky_network
#include <cstdio>

#include "common/time.h"
#include "core/forwarding_policy.h"
#include "experiments/runner.h"
#include "workload/scenario.h"

using namespace waif;

int main() {
  workload::ScenarioConfig config;
  config.event_frequency = 32.0;  // 32 notifications/day on the topic
  config.user_frequency = 2.0;    // the user checks twice a day
  config.max = 8;                 // reading at most 8 at a time
  config.outage_fraction = 0.9;   // the link is down 90% of the time
  config.horizon = kYear;

  struct Row {
    const char* name;
    core::PolicyConfig policy;
  };
  const Row rows[] = {
      {"on-line (forward everything)", core::PolicyConfig::online()},
      {"pure on-demand", core::PolicyConfig::on_demand()},
      {"rate-based prefetch", core::PolicyConfig::rate(0.0)},
      {"buffer prefetch (limit 16)", core::PolicyConfig::buffer(16)},
      {"adaptive (Figure 7)", core::PolicyConfig::adaptive()},
  };

  std::printf("One virtual year, event freq 32/day, user freq 2/day, Max 8,\n"
              "network down %.0f%% of the time.\n\n",
              config.outage_fraction * 100.0);
  std::printf("%-32s %10s %10s %12s\n", "policy", "waste %", "loss %",
              "transfers");
  for (const Row& row : rows) {
    const experiments::Comparison comparison =
        experiments::compare_policies(config, row.policy, /*seed=*/1);
    std::printf("%-32s %10.1f %10.1f %12llu\n", row.name,
                comparison.waste_percent, comparison.loss_percent,
                static_cast<unsigned long long>(
                    comparison.policy.link.downlink_messages));
  }
  std::printf("\nwaste = forwarded but never read; loss = read under on-line "
              "forwarding\nbut missed under the policy (same trace).\n");
  return 0;
}
