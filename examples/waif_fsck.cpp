// waif_fsck: offline integrity check of a proxy storage directory.
//
// Points the read-only checker (storage/fsck.h) at a FileBackend directory
// written by storage::ProxyPersistence and prints what a recovery would
// find: valid WAL records, torn or CRC-damaged tails, which snapshot
// checkpoints decode, and whether the newest snapshot's watermark is
// consistent with the log.
//
// Exit status: 0 = clean, 1 = damaged but recoverable (a restart repairs
// it by truncating the bad tail), 2 = unrecoverable inconsistency.
//
// Example:
//   ./build/examples/waif_fsck --dir=/var/lib/waif/proxy-0
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/flags.h"
#include "storage/backend.h"
#include "storage/fsck.h"

using namespace waif;

int main(int argc, char** argv) {
  std::string dir;
  FlagSet flags(
      "waif_fsck — read-only integrity check of a proxy storage directory "
      "(WAL + snapshots).\nExit status: 0 clean, 1 recoverable damage, 2 "
      "unrecoverable.");
  flags.add_string("dir", &dir, "storage directory to check");
  if (!flags.parse(argc - 1, argv + 1)) return 2;
  if (dir.empty()) {
    std::fprintf(stderr, "waif_fsck: --dir is required (see --help)\n");
    return 2;
  }
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "waif_fsck: no such directory: %s\n", dir.c_str());
    return 2;
  }

  storage::FileBackend backend(dir);
  const storage::FsckReport report = storage::waif_fsck(backend);
  std::fputs(storage::format_report(report).c_str(), stdout);
  if (report.clean()) return 0;
  return report.recoverable() ? 1 : 2;
}
