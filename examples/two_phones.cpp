// Multi-device cooperation (Section 4 future work): a commuter's phone and
// the home laptop subscribe to the same news topic. The phone's cellular
// link drops for long stretches; the laptop's DSL has its own outages. When
// the user reads on the phone during an outage and the local buffer runs
// dry, the read is topped up from the laptop's cache over the home Wi-Fi
// (an ad-hoc network between the user's devices).
//
// Build & run:  ./build/examples/two_phones
#include <cstdio>

#include "common/rng.h"
#include "core/channel.h"
#include "core/device_group.h"
#include "core/proxy.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"
#include "workload/scenario.h"
#include "workload/trace.h"

using namespace waif;

int main() {
  sim::Simulator sim;
  pubsub::Broker broker(sim);

  // Two devices, two independent last hops.
  net::Link cellular(sim);
  net::Link dsl(sim);
  device::Device phone(sim, DeviceId{1});
  device::Device laptop(sim, DeviceId{2});
  core::SimDeviceChannel phone_channel(cellular, phone);
  core::SimDeviceChannel laptop_channel(dsl, laptop);
  core::Proxy phone_proxy(sim, phone_channel, "phone-proxy");
  core::Proxy laptop_proxy(sim, laptop_channel, "laptop-proxy");
  phone_proxy.attach_to_link(cellular);
  laptop_proxy.attach_to_link(dsl);

  core::TopicConfig config;
  config.options.max = 8;
  config.policy = core::PolicyConfig::buffer(16);
  phone_proxy.add_topic("news", config);
  laptop_proxy.add_topic("news", config);
  broker.subscribe("news", phone_proxy, config.options);
  broker.subscribe("news", laptop_proxy, config.options);

  core::DeviceGroup group(sim);
  group.add_member(phone_proxy, phone_channel);
  group.add_member(laptop_proxy, laptop_channel);

  // A month of news, with heavy independent outages on both links.
  workload::ScenarioConfig scenario;
  scenario.horizon = 30 * kDay;
  scenario.event_frequency = 32.0;
  scenario.outage_fraction = 0.8;
  scenario.mean_outage = 2 * kDay;
  Rng cellular_rng(11);
  Rng dsl_rng(22);
  cellular.apply_schedule(workload::generate_outages(scenario, cellular_rng));
  dsl.apply_schedule(workload::generate_outages(scenario, dsl_rng));

  pubsub::Publisher agency(broker, "news-agency");
  Rng workload_rng(33);
  auto arrivals = workload::generate_arrivals(scenario, workload_rng);
  for (const auto& arrival : arrivals) {
    sim.schedule_at(arrival.time, [&agency, arrival] {
      agency.publish("news", arrival.rank);
    });
  }

  // The user reads twice a day on the phone.
  std::uint64_t total = 0;
  for (int day = 0; day < 30; ++day) {
    for (SimDuration at : {9 * kHour, 21 * kHour}) {
      sim.schedule_at(day * kDay + at, [&group, &total] {
        total += group.user_read(0, "news").size();
      });
    }
  }

  sim.run_until(scenario.horizon);

  const auto& stats = group.stats();
  std::printf("One month, both links ~80%% down (independent schedules).\n");
  std::printf("reads performed: %llu, messages read: %llu\n",
              static_cast<unsigned long long>(stats.group_reads),
              static_cast<unsigned long long>(total));
  std::printf("  served from the phone's own cache: %llu\n",
              static_cast<unsigned long long>(stats.local_reads));
  std::printf("  served from the laptop over ad-hoc: %llu\n",
              static_cast<unsigned long long>(stats.peer_reads));
  std::printf("  duplicate cache copies discarded:   %llu\n",
              static_cast<unsigned long long>(stats.duplicates_discarded));
  std::printf("Without the laptop, the ad-hoc share would simply have been "
              "lost reads.\n");
  return 0;
}
