// Command-line scenario driver: run any paper-style experiment without
// writing code. Replays one (configurable) trace under a chosen forwarding
// policy and its on-line baseline, printing waste/loss and the transfer
// accounting.
//
// Examples:
//   ./build/examples/scenario_cli --policy=adaptive --outage=0.9
//   ./build/examples/scenario_cli --policy=buffer --limit=16 --uf=0.5
//       --expiry=5.7d --threshold=2.5 --seeds=5   (one line)
//   ./build/examples/scenario_cli --help
#include <cstdio>
#include <fstream>
#include <string>

#include "common/flags.h"
#include "core/forwarding_policy.h"
#include "experiments/parallel_runner.h"
#include "experiments/runner.h"
#include "workload/scenario.h"
#include "workload/serialization.h"

using namespace waif;

int main(int argc, char** argv) {
  workload::ScenarioConfig scenario;
  std::string policy_name = "adaptive";
  std::int64_t max = 8;
  std::int64_t limit = 16;
  std::int64_t seeds = 3;
  double rate_ratio = 0.0;
  SimDuration expiration_threshold = 0;
  SimDuration delay = 0;

  FlagSet flags(
      "scenario_cli — replay a volume-limited pub/sub scenario under a "
      "forwarding policy\nand its on-line baseline, reporting waste% and "
      "loss% (ICDCS'05 methodology).");
  flags.add_double("ef", &scenario.event_frequency, "events per day");
  flags.add_double("uf", &scenario.user_frequency, "user reads per day");
  flags.add_int("max", &max, "Max: messages per read");
  flags.add_double("threshold", &scenario.threshold,
                   "Threshold: minimum acceptable rank (0..5)");
  flags.add_double("outage", &scenario.outage_fraction,
                   "fraction of time the last hop is down (0..1)");
  flags.add_duration("mean-outage", &scenario.mean_outage,
                     "mean outage duration (e.g. 4h, 2d)");
  flags.add_duration("expiry", &scenario.mean_expiration,
                     "mean notification lifetime; 0 = never expires");
  flags.add_double("rank-drops", &scenario.rank_drop_fraction,
                   "fraction of events later retracted below the threshold");
  flags.add_duration("horizon", &scenario.horizon, "virtual run length");
  flags.add_string("policy", &policy_name,
                   "online | ondemand | buffer | rate | adaptive");
  flags.add_int("limit", &limit, "prefetch limit (buffer policy)");
  flags.add_double("ratio", &rate_ratio,
                   "fixed consumption/production ratio (rate policy); 0 = "
                   "derive dynamically");
  flags.add_duration("exp-threshold", &expiration_threshold,
                     "static prefetch expiration threshold (buffer policy)");
  flags.add_duration("delay", &delay,
                     "rank-change delay stage before events become "
                     "prefetchable");
  flags.add_int("seeds", &seeds, "number of random seeds to average over");
  std::int64_t jobs = 0;
  flags.add_int("jobs", &jobs,
                "worker threads for the seed sweep (0 = all hardware "
                "threads); results are identical at any value");
  std::string config_file;
  std::string save_trace;
  flags.add_string("config", &config_file,
                   "load scenario parameters from a file written by "
                   "workload::write_scenario (flags still override)");
  flags.add_string("save-trace", &save_trace,
                   "write seed 1's full event trace to this file");
  if (!flags.parse(argc - 1, argv + 1)) return 1;

  if (!config_file.empty()) {
    std::ifstream in(config_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", config_file.c_str());
      return 1;
    }
    // The file provides the base; flags already parsed win for the knobs
    // they set, so re-parse them over the loaded config.
    try {
      scenario = workload::read_scenario(in);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: %s\n", config_file.c_str(), error.what());
      return 1;
    }
    if (!flags.parse(argc - 1, argv + 1)) return 1;
  }

  scenario.max = static_cast<int>(max);

  core::PolicyConfig policy;
  if (policy_name == "online") {
    policy = core::PolicyConfig::online();
  } else if (policy_name == "ondemand") {
    policy = core::PolicyConfig::on_demand();
  } else if (policy_name == "buffer") {
    policy = core::PolicyConfig::buffer(static_cast<std::size_t>(limit),
                                        expiration_threshold);
  } else if (policy_name == "rate") {
    policy = core::PolicyConfig::rate(rate_ratio);
  } else if (policy_name == "adaptive") {
    policy = core::PolicyConfig::adaptive();
  } else {
    std::fprintf(stderr, "unknown policy: %s\n", policy_name.c_str());
    return 1;
  }
  policy.delay = delay;

  std::printf("scenario: ef=%g/day uf=%g/day Max=%d Threshold=%.1f "
              "outage=%.0f%% expiry=%s horizon=%s\n",
              scenario.event_frequency, scenario.user_frequency, scenario.max,
              scenario.threshold, scenario.outage_fraction * 100.0,
              scenario.mean_expiration == 0
                  ? "never"
                  : format_duration(scenario.mean_expiration).c_str(),
              format_duration(scenario.horizon).c_str());
  std::printf("policy:   %s\n\n", to_string(policy.kind).c_str());

  if (jobs < 0) {
    std::fprintf(stderr, "--jobs must be >= 0\n");
    return 1;
  }
  experiments::ParallelRunner runner(static_cast<std::size_t>(jobs));
  const experiments::Aggregate aggregate =
      runner.evaluate(scenario, policy, static_cast<std::uint64_t>(seeds));
  std::printf("over %llu seed(s):\n",
              static_cast<unsigned long long>(aggregate.seeds));
  std::printf("  waste  %6.2f %%  (stddev %.2f)\n", aggregate.waste_percent,
              aggregate.waste_stddev);
  std::printf("  loss   %6.2f %%  (stddev %.2f)\n", aggregate.loss_percent,
              aggregate.loss_stddev);

  if (!save_trace.empty()) {
    std::ofstream out(save_trace);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", save_trace.c_str());
      return 1;
    }
    workload::write_trace(out, workload::generate_trace(scenario, /*seed=*/1));
    std::printf("\nseed 1 trace written to %s\n", save_trace.c_str());
  }

  // One detailed run for the transfer accounting.
  const experiments::Comparison detail =
      experiments::compare_policies(scenario, policy, /*seed=*/1);
  std::printf("\nseed 1 detail:\n");
  std::printf("  arrivals %llu, forwarded (unique) %llu, read %zu\n",
              static_cast<unsigned long long>(detail.policy.topic.arrivals),
              static_cast<unsigned long long>(detail.policy.forwarded_unique),
              detail.policy.read_ids.size());
  std::printf("  downlink msgs %llu, uplink msgs %llu, expired at proxy %llu, "
              "held %llu, delayed %llu\n",
              static_cast<unsigned long long>(detail.policy.link.downlink_messages),
              static_cast<unsigned long long>(detail.policy.link.uplink_messages),
              static_cast<unsigned long long>(detail.policy.topic.expired_at_proxy),
              static_cast<unsigned long long>(detail.policy.topic.held),
              static_cast<unsigned long long>(detail.policy.topic.delayed));
  return 0;
}
