// Quickstart: the smallest complete WAIF last-hop setup.
//
// One publisher, one broker, one proxy serving one mobile device over a
// flaky link. Shows the volume-limiting knobs (Rank/Expiration on publish,
// Max/Threshold on subscribe) and the adaptive prefetching policy.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/channel.h"
#include "core/proxy.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

using namespace waif;

int main() {
  // The simulation substrate: one virtual clock drives everything.
  sim::Simulator sim;

  // The routing substrate (a "black box" offering the standard pub/sub ops).
  pubsub::Broker broker(sim);

  // The last hop: a link with outages and a battery-powered device.
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);

  // The proxy manages the "weather" topic on-demand with volume limits:
  // at most 5 messages per read, nothing below rank 2.0, and the adaptive
  // (Figure 7) prefetching policy.
  core::Proxy proxy(sim, channel);
  proxy.attach_to_link(link);
  core::TopicConfig config;
  config.mode = core::DeliveryMode::kOnDemand;
  config.options.max = 5;
  config.options.threshold = 2.0;
  config.policy = core::PolicyConfig::adaptive();
  proxy.add_topic("weather", config);
  broker.subscribe("weather", proxy, config.options);

  // A publisher annotates notifications with Rank and Expiration.
  pubsub::Publisher forecast(broker, "met.no");
  sim.schedule_at(hours(1.0), [&] {
    forecast.publish("weather", /*rank=*/3.5, /*lifetime=*/days(2.0),
                     "mostly sunny, 14C");
    forecast.publish("weather", /*rank=*/1.0, days(2.0),
                     "pollen count moderate");  // below the user's threshold
  });
  sim.schedule_at(hours(2.0), [&] {
    forecast.publish("weather", /*rank=*/5.0, hours(6.0),
                     "STORM WARNING: gale force winds tonight");
  });
  // Published after the first read but before the outage: the adaptive
  // policy prefetches these, so the read *during* the outage still works.
  sim.schedule_at(hours(2.75), [&] {
    forecast.publish("weather", /*rank=*/4.0, days(1.0),
                     "storm update: gusts now expected at 9pm");
    forecast.publish("weather", /*rank=*/3.0, days(1.0),
                     "tomorrow: clearing skies, 12C");
  });

  // The link drops for the afternoon.
  link.apply_schedule(
      net::OutageSchedule({net::Outage{hours(3.0), hours(9.0)}}, kDay));

  // The user checks messages twice.
  core::LastHopSession session(proxy, channel);
  auto read_now = [&](const char* when) {
    auto messages = session.user_read("weather");
    std::printf("[%s, t=%s] user reads %zu message(s):\n", when,
                format_duration(sim.now()).c_str(), messages.size());
    for (const auto& m : messages) {
      std::printf("  rank %.1f  %s\n", m->rank, m->payload.c_str());
    }
  };
  sim.schedule_at(hours(2.5), [&] { read_now("before outage"); });
  sim.schedule_at(hours(5.0), [&] { read_now("during outage"); });

  sim.run_until(kDay);

  std::printf("\nlast hop: %llu downlink / %llu uplink messages, %llu expired"
              " unread on device\n",
              static_cast<unsigned long long>(link.stats().downlink_messages),
              static_cast<unsigned long long>(link.stats().uplink_messages),
              static_cast<unsigned long long>(device.stats().expired_unread));
  return 0;
}
