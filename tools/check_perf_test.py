#!/usr/bin/env python3
"""Unit tests for tools/check_perf.py, run on synthetic bench reports.

Registered in ctest (see tests/CMakeLists.txt) so the perf gate's own
behaviour — pass, fail, and the warn-and-skip paths for baselines that do
not exist yet — is covered by the same `ctest` invocation as everything
else. Each case shells out to the real script the way CI does.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_perf.py")


def report(events_per_sec=None, schema=1, extra_metrics=None):
    metrics = dict(extra_metrics or {})
    if events_per_sec is not None:
        metrics["engine_events_per_sec"] = events_per_sec
    return {"schema": schema, "bench": "synthetic", "metrics": metrics}


class CheckPerfTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def path(self, name, content=None):
        full = os.path.join(self._dir.name, name)
        if content is not None:
            with open(full, "w", encoding="utf-8") as handle:
                json.dump(content, handle)
        return full

    def run_gate(self, baseline, fresh, max_regression=None):
        command = [sys.executable, SCRIPT, "--baseline", baseline, "--fresh", fresh]
        if max_regression is not None:
            command += ["--max-regression", str(max_regression)]
        return subprocess.run(command, capture_output=True, text=True)

    def test_within_budget_passes(self):
        result = self.run_gate(
            self.path("base.json", report(1000.0)),
            self.path("fresh.json", report(950.0)),
        )
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("OK", result.stdout)

    def test_regression_beyond_budget_fails(self):
        result = self.run_gate(
            self.path("base.json", report(1000.0)),
            self.path("fresh.json", report(500.0)),
            max_regression=0.15,
        )
        self.assertEqual(result.returncode, 1)
        self.assertIn("FAIL", result.stderr)

    def test_missing_baseline_file_warns_and_skips(self):
        # A freshly added bench has a report in the run but no committed
        # baseline yet: that must not fail CI.
        result = self.run_gate(
            os.path.join(self._dir.name, "does_not_exist.json"),
            self.path("fresh.json", report(1000.0)),
        )
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("WARN", result.stdout)
        self.assertIn("skipping", result.stdout)

    def test_baseline_without_gated_metric_warns_and_skips(self):
        result = self.run_gate(
            self.path("base.json", report(None, extra_metrics={"other": 1.0})),
            self.path("fresh.json", report(1000.0)),
        )
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("WARN", result.stdout)

    def test_missing_fresh_file_is_an_error(self):
        result = self.run_gate(
            self.path("base.json", report(1000.0)),
            os.path.join(self._dir.name, "does_not_exist.json"),
        )
        self.assertNotEqual(result.returncode, 0)

    def test_fresh_without_gated_metric_is_an_error(self):
        result = self.run_gate(
            self.path("base.json", report(1000.0)),
            self.path("fresh.json", report(None)),
        )
        self.assertEqual(result.returncode, 1)
        self.assertIn("engine_events_per_sec", result.stderr)

    def test_bad_schema_is_an_error(self):
        result = self.run_gate(
            self.path("base.json", report(1000.0, schema=2)),
            self.path("fresh.json", report(1000.0)),
        )
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("schema", result.stderr)

    def test_other_metrics_are_reported_not_gated(self):
        # A secondary metric cratering must not fail the gate.
        result = self.run_gate(
            self.path(
                "base.json",
                report(1000.0, extra_metrics={"wal_group_commit_speedup": 4.0}),
            ),
            self.path(
                "fresh.json",
                report(1000.0, extra_metrics={"wal_group_commit_speedup": 0.1}),
            ),
        )
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("wal_group_commit_speedup", result.stdout)


if __name__ == "__main__":
    unittest.main()
