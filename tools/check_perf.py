#!/usr/bin/env python3
"""CI perf regression gate over BENCH_micro_core.json.

Compares a freshly measured bench report against the committed baseline and
fails (exit 1) when the headline engine throughput regressed by more than
the allowed fraction:

    python3 tools/check_perf.py \
        --baseline BENCH_micro_core.json \
        --fresh bench-reports/BENCH_micro_core.json \
        --max-regression 0.15

The gated metric is metrics.engine_events_per_sec — end-to-end simulator
timer churn, the number the calendar-queue/arena work is meant to move. The
other metrics are printed for the log but not gated: absolute numbers shift
with runner hardware, so anything tighter than a generous single-metric gate
would flake. Refresh the committed baseline (see EXPERIMENTS.md) whenever an
intentional engine change moves the number.

A bench report that exists in the fresh run but has no committed baseline
yet (a newly added bench, first PR) is not a failure: the gate warns and
exits 0 so CI stays green until the baseline lands. The same applies to a
baseline that predates the gated metric. A missing *fresh* report stays a
hard error — the run was supposed to produce it.
"""

import argparse
import json
import os
import sys

GATED_METRIC = "engine_events_per_sec"
REPORTED_METRICS = (
    "engine_events_per_sec",
    "calendar_vs_heap_speedup",
    "ranked_queue_ops_per_sec",
    "wal_group_commit_speedup",
)


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != 1:
        sys.exit(f"{path}: unsupported bench report schema {report.get('schema')!r}")
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH json")
    parser.add_argument("--fresh", required=True, help="freshly measured BENCH json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="allowed fractional drop in %s (default 0.15)" % GATED_METRIC,
    )
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(
            f"WARN: baseline {args.baseline} does not exist (new bench not "
            f"yet committed?) — skipping the perf gate"
        )
        return

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    print(f"perf gate: {args.fresh} vs committed {args.baseline}")
    for key in REPORTED_METRICS:
        base = baseline.get("metrics", {}).get(key)
        now = fresh.get("metrics", {}).get(key)
        if base is None or now is None:
            continue
        ratio = now / base if base else float("inf")
        print(f"  {key}: {base:.4g} -> {now:.4g}  ({ratio:.2f}x)")

    base = baseline.get("metrics", {}).get(GATED_METRIC)
    now = fresh.get("metrics", {}).get(GATED_METRIC)
    if base is None:
        print(
            f"WARN: baseline {args.baseline} has no metrics.{GATED_METRIC} "
            f"— skipping the perf gate"
        )
        return
    if now is None:
        sys.exit(f"missing metrics.{GATED_METRIC} in fresh report {args.fresh}")

    floor = base * (1.0 - args.max_regression)
    if now < floor:
        sys.exit(
            f"FAIL: {GATED_METRIC} regressed beyond {args.max_regression:.0%}: "
            f"{now:.4g} < floor {floor:.4g} (baseline {base:.4g})"
        )
    print(
        f"OK: {GATED_METRIC} {now:.4g} within {args.max_regression:.0%} of "
        f"baseline {base:.4g}"
    )


if __name__ == "__main__":
    main()
