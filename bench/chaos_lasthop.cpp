// Chaos harness for the unreliable last hop: sweeps silent drop rate x
// outage downtime x injected proxy crashes, replaying every cell through the
// deterministic parallel runner. Each cell runs the reliable delivery layer
// (core/reliable_channel.h) over a faulty link (net/fault.h) and a
// heartbeat-monitored replicated proxy, and asserts the safety invariants:
//
//   1. no event is both counted as read and lost — every id the user read
//      was delivered by the transport;
//   2. retries never deliver past expiration — checked at every delivery;
//   3. duplicate receives at the device only arise from the replication
//      asynchrony window (failovers) or an ACK-starved requeue, never from
//      plain retransmission (the dedup window absorbs those);
//   4. transfer conservation — every accepted message is eventually acked,
//      abandoned, or still in the pipeline at the horizon.
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "core/replication.h"
#include "metrics/inefficiency.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "workload/trace.h"

using namespace waif;

namespace {

struct ChaosCell {
  double drop = 0.0;          // silent downlink/uplink drop probability
  double outage = 0.0;        // outage_fraction of the run
  std::size_t crashes = 0;    // injected active-replica crashes
};

struct ChaosResult {
  metrics::ReadSet read_ids;
  core::ReliableChannelStats reliable;
  net::FaultStats faults;
  std::uint64_t device_duplicates = 0;
  std::uint64_t auto_promotions = 0;
  std::uint64_t deliveries_checked = 0;
};

workload::ScenarioConfig cell_config(const ChaosCell& cell) {
  workload::ScenarioConfig config = bench::paper_config();
  config.horizon = kYear / 4;
  config.user_frequency = 4.0;
  config.max = 16;
  config.outage_fraction = cell.outage;
  config.mean_outage = 4 * kHour;
  config.fault.drop_probability = cell.drop;
  config.fault.uplink_drop_probability = cell.drop;
  config.fault.burst_start_probability = cell.drop / 8.0;
  config.fault.half_open_probability = cell.drop > 0 ? 0.1 : 0.0;
  config.fault.base_latency = cell.drop > 0 ? 200 * kMillisecond : 0;
  return config;
}

/// One chaos replay: faulty link + reliable channel + replicated proxy with
/// the failure detector on; `cell.crashes` active-replica crashes are
/// injected at evenly spaced instants, each dead replica restarting two
/// hours later. Returns the measurements after asserting the invariants
/// that must hold inside the replay.
ChaosResult run_cell(const workload::Trace& trace, const ChaosCell& cell) {
  const workload::ScenarioConfig config = cell_config(cell);
  sim::Simulator sim;
  pubsub::Broker broker(sim, std::max<std::size_t>(trace.arrivals.size(), 1));
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});

  std::uint64_t seed_state = config.fault_seed;
  const std::uint64_t fault_seed = splitmix64(seed_state);
  const std::uint64_t jitter_seed = splitmix64(seed_state);
  if (config.fault.enabled()) link.set_fault_model(config.fault, fault_seed);
  core::ReliableDeviceChannel channel(sim, link, device, {}, jitter_seed);

  core::ReplicationConfig replication;
  replication.replication_latency = 50 * kMillisecond;
  replication.heartbeat_interval = 30 * kSecond;
  replication.suspicion_timeout = 5 * kMinute;
  core::ReplicatedProxy proxy(sim, link, device, channel, replication);

  core::TopicConfig topic_config;
  topic_config.options.max = config.max;
  topic_config.options.threshold = config.threshold;
  topic_config.policy = core::PolicyConfig::buffer(64);
  proxy.add_topic(experiments::kTopic, topic_config);
  broker.subscribe(experiments::kTopic, proxy, topic_config.options);

  // Invariant 2: an expired event must never reach the device, no matter
  // how many retries it took. Invariant 1 needs the delivered id set.
  ChaosResult result;
  std::unordered_set<std::uint64_t> delivered_ids;
  channel.set_delivery_observer(
      [&sim, &delivered_ids, &result](const pubsub::NotificationPtr& event) {
        WAIF_CHECK(!event->expired_at(sim.now()));
        delivered_ids.insert(event->id.value);
        ++result.deliveries_checked;
      });
  // Graceful degradation: abandoned transfers re-enter the *active*
  // replica's holding queue.
  channel.set_failure_handler(
      [&proxy](const pubsub::NotificationPtr& event) {
        if (core::TopicState* state =
                proxy.active_proxy().topic(experiments::kTopic)) {
          state->requeue_undelivered(event);
        }
      });

  link.apply_schedule(trace.outages);

  pubsub::Publisher publisher(broker, "workload");
  publisher.advertise(experiments::kTopic);
  for (const workload::Arrival& arrival : trace.arrivals) {
    sim.schedule_at(arrival.time, [&publisher, arrival] {
      publisher.publish(experiments::kTopic, arrival.rank, arrival.lifetime);
    });
  }
  for (SimTime read_at : trace.reads) {
    sim.schedule_at(read_at, [&proxy, &result] {
      for (const auto& n : proxy.user_read(experiments::kTopic)) {
        result.read_ids.insert(n->id.value);
      }
    });
  }
  for (std::size_t i = 0; i < cell.crashes; ++i) {
    const SimTime crash_at =
        trace.horizon * static_cast<SimTime>(i + 1) /
        static_cast<SimTime>(cell.crashes + 1);
    sim.schedule_at(crash_at, [&proxy] {
      if (proxy.active_is_alive() && proxy.live_replicas() == 2) {
        proxy.crash_active();  // the detector must notice on its own
      }
    });
    sim.schedule_at(crash_at + 2 * kHour, [&proxy] {
      for (std::size_t index = 0; index < 2; ++index) {
        if (!proxy.replica_alive(index)) proxy.restart_replica(index);
      }
    });
  }
  sim.run_until(trace.horizon);

  result.reliable = channel.stats();
  if (const net::FaultModel* fault = link.fault_model()) {
    result.faults = fault->stats();
  }
  result.device_duplicates = device.stats().duplicate_receives;
  result.auto_promotions = proxy.stats().auto_promotions;

  // Invariant 1: everything the user read was delivered by the transport.
  for (std::uint64_t id : result.read_ids) {
    WAIF_CHECK(delivered_ids.contains(id));
  }
  // Invariant 3: without failovers, device-level duplicates can only come
  // from an ACK-starved requeue that a later read pulled again.
  if (cell.crashes == 0) {
    WAIF_CHECK(result.device_duplicates <= result.reliable.requeued);
  }
  // Invariant 4: transfer conservation at the horizon.
  const core::ReliableChannelStats& rc = result.reliable;
  WAIF_CHECK(rc.acked + rc.expired_abandoned + rc.attempts_exhausted +
                 channel.in_flight() + channel.backlog() ==
             rc.accepted);
  // Arrivals cannot outnumber surviving transmissions.
  WAIF_CHECK(rc.delivered + rc.duplicates_suppressed <=
             rc.transmissions - rc.link_drops);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("chaos_lasthop");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv,
      "Chaos sweep — drop rate x outage downtime x crash count over the "
      "reliable last hop with automatic failover"));

  const double drops[] = {0.0, 0.05, 0.2};
  const double outages[] = {0.0, 0.25, 0.5};
  const std::size_t crash_counts[] = {0, 2};

  std::vector<ChaosCell> cells;
  for (double outage : outages) {
    for (double drop : drops) {
      for (std::size_t crashes : crash_counts) {
        cells.push_back(ChaosCell{drop, outage, crashes});
      }
    }
  }

  // One trace per outage fraction (the fault model does not alter the
  // workload), plus the fault-free on-line baseline for the loss metric.
  std::vector<workload::Trace> traces;
  std::vector<metrics::ReadSet> baselines;
  for (double outage : outages) {
    ChaosCell clean;
    clean.outage = outage;
    workload::ScenarioConfig config = cell_config(clean);
    traces.push_back(workload::generate_trace(config, 1));
    baselines.push_back(
        experiments::run_trace(traces.back(), config,
                               core::PolicyConfig::online())
            .read_ids);
  }
  auto trace_index = [&outages](double outage) {
    for (std::size_t i = 0; i < std::size(outages); ++i) {
      if (outages[i] == outage) return i;
    }
    WAIF_CHECK(false);
    return std::size_t{0};
  };

  const std::vector<ChaosResult> results =
      runner.map(cells.size(), [&cells, &traces, &trace_index](std::size_t i) {
        return run_cell(traces[trace_index(cells[i].outage)], cells[i]);
      });

  metrics::Table table(
      "Chaos sweep — reliable last hop under silent drops, outages and "
      "active-replica crashes\n(quarter-year runs, buffer prefetch 64, "
      "heartbeat failover 30s/5min; loss vs fault-free on-line baseline)",
      "drop / outage / crashes",
      {"waste %", "loss %", "retries", "requeued", "dupes", "promotions"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ChaosCell& cell = cells[i];
    const ChaosResult& result = results[i];
    char label[64];
    std::snprintf(label, sizeof label, "%.2f / %.2f / %zu", cell.drop,
                  cell.outage, cell.crashes);
    const double waste = metrics::waste_percent(
        result.deliveries_checked, result.read_ids.size());
    const double loss = metrics::loss_percent(
        baselines[trace_index(cell.outage)], result.read_ids);
    table.add_row(label,
                  {waste, loss, static_cast<double>(result.reliable.retries),
                   static_cast<double>(result.reliable.requeued),
                   static_cast<double>(result.device_duplicates),
                   static_cast<double>(result.auto_promotions)});
  }
  bench::report_sweep(runner, report);
  bench::emit(
      table,
      "all invariants held (the binary aborts otherwise). Retries grow with "
      "the drop rate; loss stays near the fault-free level because the "
      "transport retransmits and the failure detector promotes the standby "
      "after every injected crash (promotions column); duplicates appear "
      "only in crash cells, inside the replication asynchrony window.");
  return 0;
}
