// Figure 4: waste due to expirations with different values of user frequency
// and expiration periods from 16 seconds to ~3 days (event frequency =
// 32/day, Max = infinity, on-line forwarding, no outages).
//
// Expected shape (paper): short-lived notifications mostly expire before the
// user gets to them (waste near 100%); once the user's read interval drops
// below the expiration time, waste disappears.
#include <string>
#include <vector>

#include "bench_util.h"
#include "pubsub/subscription.h"

using namespace waif;

int main(int argc, char** argv) {
  bench::BenchReport report("fig4_expiration_waste");
  const std::vector<double> user_frequencies = {1, 2, 4, 8, 16, 32, 64};
  const std::vector<double> expirations = {16,    64,    256,   1024,
                                           4096,  16384, 65536, 262144};
  experiments::ParallelRunner runner(
      bench::parse_jobs(argc, argv, "fig4 — waste due to expirations"));

  std::vector<std::string> series;
  series.reserve(user_frequencies.size());
  for (double uf : user_frequencies) series.push_back(bench::fmt("uf=%g", uf));

  metrics::Table table(
      "Figure 4 — Percent of wasted messages vs mean expiration time "
      "(seconds), one series per user frequency\n(event frequency = 32/day, "
      "Max = infinity, on-line forwarding, exponential lifetimes)",
      "exp(s)", series);

  std::vector<experiments::EvalPoint> points;
  for (double expiration : expirations) {
    for (double uf : user_frequencies) {
      experiments::EvalPoint point;
      point.scenario = bench::paper_config();
      point.scenario.user_frequency = uf;
      point.scenario.max = pubsub::kUnlimitedMax;  // "Max = infinity" (S3.3)
      point.scenario.mean_expiration = seconds(expiration);
      point.policy = core::PolicyConfig::online();
      point.seeds = 2;
      points.push_back(point);
    }
  }
  const std::vector<experiments::Aggregate> aggregates =
      runner.evaluate_many(points);

  std::size_t cursor = 0;
  for (double expiration : expirations) {
    std::vector<double> row;
    row.reserve(user_frequencies.size());
    for (std::size_t s = 0; s < user_frequencies.size(); ++s) {
      row.push_back(aggregates[cursor++].waste_percent);
    }
    table.add_row(bench::fmt("%.0f", expiration), row);
  }
  bench::report_sweep(runner, report);

  bench::emit(table,
              "near-100% waste for lifetimes far below the interval between "
              "reads; waste drops toward 0 once reads come more often than "
              "expirations. Higher user frequency pushes the knee left.");
  return 0;
}
