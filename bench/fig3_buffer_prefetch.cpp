// Figure 3: loss and waste with buffer-based prefetching under different
// prefetch limits and levels of network availability (event frequency =
// 32/day, Max = 8, user frequency = 2/day).
//
// Expected shape (paper): loss drops to ~0 as the limit grows from 1 to 16;
// waste starts growing past ~64 and levels off at ~50% (the overflow bound
// for this configuration). Between 16 and 64 both are below ~1%.
#include <string>
#include <vector>

#include "bench_util.h"

using namespace waif;

int main(int argc, char** argv) {
  bench::BenchReport report("fig3_buffer_prefetch");
  const std::vector<double> outages = {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99};
  const std::vector<std::size_t> limits = {1,    4,    16,    64,   256,
                                           1024, 4096, 16384, 65536};
  experiments::ParallelRunner runner(
      bench::parse_jobs(argc, argv, "fig3 — buffer-based prefetching"));

  std::vector<std::string> series;
  series.reserve(outages.size());
  for (double outage : outages) {
    series.push_back(bench::fmt("outage=%.2f", outage));
  }

  metrics::Table loss_table(
      "Figure 3 (top) — Percent of lost messages vs prefetch limit, one "
      "series per outage level\n(event frequency = 32/day, Max = 8, user "
      "frequency = 2/day, buffer-based prefetching)",
      "limit", series);
  metrics::Table waste_table(
      "Figure 3 (bottom) — Percent of wasted messages vs prefetch limit, one "
      "series per outage level",
      "limit", series);

  std::vector<experiments::EvalPoint> points;
  for (std::size_t limit : limits) {
    for (double outage : outages) {
      experiments::EvalPoint point;
      point.scenario = bench::paper_config();
      point.scenario.user_frequency = 2.0;
      point.scenario.max = 8;
      point.scenario.outage_fraction = outage;
      point.policy = core::PolicyConfig::buffer(limit);
      point.seeds = 2;
      points.push_back(point);
    }
  }
  const std::vector<experiments::Aggregate> aggregates =
      runner.evaluate_many(points);

  std::size_t cursor = 0;
  for (std::size_t limit : limits) {
    std::vector<double> loss_row;
    std::vector<double> waste_row;
    for (std::size_t s = 0; s < outages.size(); ++s) {
      loss_row.push_back(aggregates[cursor].loss_percent);
      waste_row.push_back(aggregates[cursor].waste_percent);
      ++cursor;
    }
    loss_table.add_row(std::to_string(limit), loss_row);
    waste_table.add_row(std::to_string(limit), waste_row);
  }
  bench::report_sweep(runner, report);

  bench::emit(loss_table,
              "loss falls from on-demand levels to ~0 by limit 16 (the "
              "average number of messages read per day) at every outage "
              "level below 1.");
  bench::emit(waste_table,
              "waste near 0 through limit 64, then climbs and levels off at "
              "~50% (with ef=32, Max=8, uf=2 half of all messages are wasted "
              "in the worst case). Both metrics < ~1% in the [16, 64] gap.");
  return 0;
}
