// Figure 3: loss and waste with buffer-based prefetching under different
// prefetch limits and levels of network availability (event frequency =
// 32/day, Max = 8, user frequency = 2/day).
//
// Expected shape (paper): loss drops to ~0 as the limit grows from 1 to 16;
// waste starts growing past ~64 and levels off at ~50% (the overflow bound
// for this configuration). Between 16 and 64 both are below ~1%.
#include <string>
#include <vector>

#include "bench_util.h"

using namespace waif;

int main() {
  const std::vector<double> outages = {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99};
  const std::vector<std::size_t> limits = {1,    4,    16,    64,   256,
                                           1024, 4096, 16384, 65536};

  std::vector<std::string> series;
  series.reserve(outages.size());
  for (double outage : outages) {
    series.push_back(bench::fmt("outage=%.2f", outage));
  }

  metrics::Table loss_table(
      "Figure 3 (top) — Percent of lost messages vs prefetch limit, one "
      "series per outage level\n(event frequency = 32/day, Max = 8, user "
      "frequency = 2/day, buffer-based prefetching)",
      "limit", series);
  metrics::Table waste_table(
      "Figure 3 (bottom) — Percent of wasted messages vs prefetch limit, one "
      "series per outage level",
      "limit", series);

  for (std::size_t limit : limits) {
    std::vector<double> loss_row;
    std::vector<double> waste_row;
    for (double outage : outages) {
      workload::ScenarioConfig config = bench::paper_config();
      config.user_frequency = 2.0;
      config.max = 8;
      config.outage_fraction = outage;
      const experiments::Aggregate aggregate = experiments::evaluate(
          config, core::PolicyConfig::buffer(limit), /*seeds=*/2);
      loss_row.push_back(aggregate.loss_percent);
      waste_row.push_back(aggregate.waste_percent);
    }
    loss_table.add_row(std::to_string(limit), loss_row);
    waste_table.add_row(std::to_string(limit), waste_row);
  }

  bench::emit(loss_table,
              "loss falls from on-demand levels to ~0 by limit 16 (the "
              "average number of messages read per day) at every outage "
              "level below 1.");
  bench::emit(waste_table,
              "waste near 0 through limit 64, then climbs and levels off at "
              "~50% (with ef=32, Max=8, uf=2 half of all messages are wasted "
              "in the worst case). Both metrics < ~1% in the [16, 64] gap.");
  return 0;
}
