// Google-benchmark micro-benchmarks of the data path: event queue (calendar
// and the retired heap it replaced), ranked queue, broker fan-out, the
// proxy's NOTIFICATION/READ handlers, and a full one-virtual-year paired
// experiment.
//
// Unlike the figure benches, this binary has a custom main: after the
// google-benchmark suite it runs four fixed headline measurements and emits
// BENCH_micro_core.json (see bench_report.h) — the number the CI perf gate
// compares against the committed baseline:
//   - engine_events_per_sec: simulator timer churn end to end;
//   - calendar_vs_heap_speedup: EventQueue racing ReferenceEventQueue
//     through an identical schedule/pop stream;
//   - ranked_queue_ops_per_sec: steady-state insert/erase/pop churn;
//   - wal_group_commit_speedup: batched framing + group fsync vs the
//     sync-every-record WAL.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "common/rng.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "core/ranked_queue.h"
#include "device/device.h"
#include "experiments/runner.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/reference_event_queue.h"
#include "sim/simulator.h"
#include "storage/backend.h"
#include "storage/wal.h"

namespace {

using namespace waif;

pubsub::NotificationPtr make_notification(std::uint64_t id, double rank) {
  auto n = std::make_shared<pubsub::Notification>();
  n->id = NotificationId{id};
  n->topic = "bench";
  n->rank = rank;
  return n;
}

// The two event-queue shapes, each run over both implementations so their
// items/sec are directly comparable in the google-benchmark table:
//   - bulk: build the whole population, then drain it (a heap's best case —
//     tight sift loops, no steady state to exploit);
//   - steady churn: hold a fixed population and pop-one/schedule-one, the
//     simulator's actual hot-path pattern and the calendar queue's O(1)
//     regime.
template <typename Queue>
void run_queue_bulk(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Queue queue;
    for (std::uint64_t i = 0; i < count; ++i) {
      queue.schedule(static_cast<SimTime>((i * 2654435761u) % 1000000), [] {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

template <typename Queue>
void run_queue_steady_churn(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  Rng rng(7);
  Queue queue;
  for (std::uint64_t i = 0; i < count; ++i) {
    queue.schedule(static_cast<SimTime>(rng.next_below(1'000'000)), [] {});
  }
  for (auto _ : state) {
    const SimTime now = queue.pop().time;
    queue.schedule(now + 1 + static_cast<SimTime>(rng.next_below(2'000'000)),
                   [] {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_EventQueueBulkScheduleAndPop(benchmark::State& state) {
  run_queue_bulk<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueBulkScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_ReferenceHeapBulkScheduleAndPop(benchmark::State& state) {
  run_queue_bulk<sim::ReferenceEventQueue>(state);
}
BENCHMARK(BM_ReferenceHeapBulkScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_EventQueueSteadyChurn(benchmark::State& state) {
  run_queue_steady_churn<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueSteadyChurn)->Arg(1024)->Arg(16384);

void BM_ReferenceHeapSteadyChurn(benchmark::State& state) {
  run_queue_steady_churn<sim::ReferenceEventQueue>(state);
}
BENCHMARK(BM_ReferenceHeapSteadyChurn)->Arg(1024)->Arg(16384);

void BM_RankedQueueInsertPop(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  Rng rng(1);
  std::vector<pubsub::NotificationPtr> notifications;
  notifications.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    notifications.push_back(make_notification(i + 1, rng.next_double() * 5.0));
  }
  for (auto _ : state) {
    core::RankedQueue queue;
    for (const auto& n : notifications) queue.insert(n);
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop_top());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_RankedQueueInsertPop)->Arg(1024)->Arg(16384);

void BM_BrokerFanOut(benchmark::State& state) {
  const auto subscribers = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  class Sink : public pubsub::Subscriber {
   public:
    void on_notification(const pubsub::NotificationPtr& n) override {
      benchmark::DoNotOptimize(n->rank);
    }
  };
  std::vector<std::unique_ptr<Sink>> sinks;
  for (std::size_t i = 0; i < subscribers; ++i) {
    sinks.push_back(std::make_unique<Sink>());
    broker.subscribe("bench", *sinks.back());
  }
  pubsub::Publisher publisher(broker, "p");
  publisher.advertise("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(publisher.publish("bench", 3.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(subscribers));
}
BENCHMARK(BM_BrokerFanOut)->Arg(1)->Arg(16)->Arg(256);

void BM_ProxyNotification(benchmark::State& state) {
  sim::Simulator sim;
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);
  core::TopicConfig config;
  config.options.max = 8;
  config.policy = core::PolicyConfig::buffer(16);
  proxy.add_topic("bench", config);
  Rng rng(2);
  std::uint64_t id = 0;
  for (auto _ : state) {
    proxy.on_notification(make_notification(++id, rng.next_double() * 5.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProxyNotification);

void BM_ProxyRead(benchmark::State& state) {
  sim::Simulator sim;
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);
  core::TopicConfig config;
  config.options.max = 8;
  config.policy = core::PolicyConfig::on_demand();
  proxy.add_topic("bench", config);
  core::LastHopSession session(proxy, channel);
  Rng rng(3);
  std::uint64_t id = 0;
  for (auto _ : state) {
    // Keep the prefetch queue populated so reads always have work to do.
    for (int i = 0; i < 8; ++i) {
      proxy.on_notification(make_notification(++id, rng.next_double() * 5.0));
    }
    benchmark::DoNotOptimize(session.user_read("bench"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProxyRead);

void BM_FullYearPairedExperiment(benchmark::State& state) {
  workload::ScenarioConfig config;
  config.event_frequency = 32.0;
  config.user_frequency = 2.0;
  config.max = 8;
  config.outage_fraction = 0.5;
  config.horizon = kYear;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiments::compare_policies(
        config, core::PolicyConfig::buffer(16), ++seed));
  }
}
BENCHMARK(BM_FullYearPairedExperiment)->Unit(benchmark::kMillisecond);

// --- headline measurements for BENCH_micro_core.json ------------------------

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// End-to-end simulator throughput: 16 self-rescheduling timers with a
/// ~1 ms mean period, measured after the calendar has wrapped once (so
/// bucket storage is warm and the steady state is allocation-free).
double measure_engine_events_per_sec() {
  sim::Simulator sim;
  Rng rng(42);
  struct Ticker {
    sim::Simulator& sim;
    Rng& rng;
    std::uint64_t fired = 0;
    void tick() {
      ++fired;
      sim.schedule_after(
          1 + static_cast<SimDuration>(rng.next_below(2000)),
          [this] { tick(); });
    }
  };
  std::vector<std::unique_ptr<Ticker>> tickers;
  for (int i = 0; i < 16; ++i) {
    tickers.push_back(std::make_unique<Ticker>(Ticker{sim, rng}));
    Ticker* t = tickers.back().get();
    sim.schedule_after(static_cast<SimDuration>(1 + rng.next_below(2000)),
                       [t] { t->tick(); });
  }
  sim.run_until(20'000'000);  // warm-up: one full calendar wrap
  std::uint64_t fired = 0;
  for (const auto& t : tickers) fired += t->fired;
  const std::uint64_t fired_before = fired;
  const auto start = std::chrono::steady_clock::now();
  sim.run_until(140'000'000);
  const double wall = seconds_since(start);
  fired = 0;
  for (const auto& t : tickers) fired += t->fired;
  return static_cast<double>(fired - fired_before) / wall;
}

/// Raw queue race in the engine's hot-path shape: hold a 16Ki working set,
/// pop the earliest, schedule a replacement. Both instantiations see the
/// identical op stream (same Rng seed), warmed before timing so the
/// calendar's geometry and the arenas have settled.
template <typename Queue>
double measure_queue_events_per_sec() {
  constexpr std::uint64_t kWorkingSet = 16384;
  constexpr std::uint64_t kWarmOps = 100000;
  constexpr std::uint64_t kOps = 400000;
  Rng rng(7);
  Queue queue;
  for (std::uint64_t i = 0; i < kWorkingSet; ++i) {
    queue.schedule(static_cast<SimTime>(rng.next_below(1'000'000)), [] {});
  }
  const auto churn = [&queue, &rng] {
    const SimTime now = queue.pop().time;
    queue.schedule(now + 1 + static_cast<SimTime>(rng.next_below(2'000'000)),
                   [] {});
  };
  for (std::uint64_t i = 0; i < kWarmOps; ++i) churn();
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) churn();
  return static_cast<double>(kOps) / seconds_since(start);
}

/// Steady-state RankedQueue churn over a recycled working set (the proxy's
/// per-topic pattern: bounded queue, high turnover).
double measure_ranked_queue_ops_per_sec() {
  constexpr std::size_t kWorkingSet = 64;
  constexpr std::uint64_t kRounds = 60000;
  std::vector<pubsub::NotificationPtr> notifications;
  Rng rng(9);
  for (std::size_t i = 0; i < kWorkingSet; ++i) {
    notifications.push_back(make_notification(i + 1, rng.next_double() * 5.0));
  }
  core::RankedQueue queue;
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (const auto& n : notifications) queue.insert(n);
    queue.erase(notifications[round % kWorkingSet]->id);
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop_bottom());
    ops += kWorkingSet + 1;
  }
  return static_cast<double>(ops) / seconds_since(start);
}

storage::WalRecord wal_sample(std::uint64_t i) {
  storage::WalRecord record;
  record.type = storage::WalRecordType::kEnqueue;
  record.stage = core::JournalStage::kOutgoing;
  record.topic = "bench";
  record.at = static_cast<SimTime>(i);
  record.event.id = NotificationId{i + 1};
  record.event.topic = record.topic;
  record.event.rank = 3.0;
  record.event.payload = std::string(24, 'x');
  return record;
}

/// Records/sec through the WAL writer onto a real filesystem (FileBackend:
/// every sync is an actual fsync); group commit stages 64-record batches
/// into one append + one fsync, so it pays one extra in-memory copy per
/// record to elide ~63/64 of the fsyncs. An untimed warm-up pass runs
/// first, so neither mode pays the cold-cache cost of being measured first.
/// Byte-equality of the two modes' logs and the fsync-count reduction are
/// asserted in tests/storage/group_commit_test.cpp.
double measure_wal_records_per_sec(bool group_commit) {
  constexpr std::uint64_t kWarmRecords = 500;
  constexpr std::uint64_t kRecords = 4000;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "waif_micro_core_wal";
  const storage::WalRecord record = wal_sample(1);
  const auto run = [&record, &dir, group_commit](std::uint64_t count) {
    std::filesystem::remove_all(dir);
    storage::FileBackend backend(dir.string());
    storage::WalWriter writer(backend, storage::kWalBlobName);
    writer.set_group_commit(group_commit);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < count; ++i) {
      writer.append(record);
      if (!group_commit || (i + 1) % 64 == 0) writer.sync();
    }
    writer.sync();
    return static_cast<double>(count) / seconds_since(start);
  };
  run(kWarmRecords);
  const double rate = run(kRecords);
  std::filesystem::remove_all(dir);
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The report window starts here, after the google-benchmark suite, so
  // events_per_sec and the alloc block describe the fixed headline runs.
  waif::bench::BenchReport report("micro_core");
  const double engine = measure_engine_events_per_sec();
  const double calendar =
      measure_queue_events_per_sec<waif::sim::EventQueue>();
  const double heap =
      measure_queue_events_per_sec<waif::sim::ReferenceEventQueue>();
  const double ranked = measure_ranked_queue_ops_per_sec();
  const double wal_grouped = measure_wal_records_per_sec(true);
  const double wal_per_record = measure_wal_records_per_sec(false);

  report.metric("engine_events_per_sec", engine);
  report.metric("calendar_events_per_sec", calendar);
  report.metric("heap_events_per_sec", heap);
  report.metric("calendar_vs_heap_speedup", heap > 0.0 ? calendar / heap : 0.0);
  report.metric("ranked_queue_ops_per_sec", ranked);
  report.metric("wal_group_commit_records_per_sec", wal_grouped);
  report.metric("wal_per_record_records_per_sec", wal_per_record);
  report.metric("wal_group_commit_speedup",
                wal_per_record > 0.0 ? wal_grouped / wal_per_record : 0.0);
  report.write();

  std::printf("sweep: engine %.3g events/s — calendar/heap %.2fx, "
              "ranked queue %.3g ops/s, wal group-commit %.2fx\n",
              engine, heap > 0.0 ? calendar / heap : 0.0, ranked,
              wal_per_record > 0.0 ? wal_grouped / wal_per_record : 0.0);
  return 0;
}
