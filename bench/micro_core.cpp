// Google-benchmark micro-benchmarks of the data path: event queue, ranked
// queue, broker fan-out, the proxy's NOTIFICATION/READ handlers, and a full
// one-virtual-year paired experiment.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "core/ranked_queue.h"
#include "device/device.h"
#include "experiments/runner.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace {

using namespace waif;

pubsub::NotificationPtr make_notification(std::uint64_t id, double rank) {
  auto n = std::make_shared<pubsub::Notification>();
  n->id = NotificationId{id};
  n->topic = "bench";
  n->rank = rank;
  return n;
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::uint64_t i = 0; i < count; ++i) {
      queue.schedule(static_cast<SimTime>((i * 2654435761u) % 1000000), [] {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_RankedQueueInsertPop(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  Rng rng(1);
  std::vector<pubsub::NotificationPtr> notifications;
  notifications.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    notifications.push_back(make_notification(i + 1, rng.next_double() * 5.0));
  }
  for (auto _ : state) {
    core::RankedQueue queue;
    for (const auto& n : notifications) queue.insert(n);
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop_top());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_RankedQueueInsertPop)->Arg(1024)->Arg(16384);

void BM_BrokerFanOut(benchmark::State& state) {
  const auto subscribers = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  class Sink : public pubsub::Subscriber {
   public:
    void on_notification(const pubsub::NotificationPtr& n) override {
      benchmark::DoNotOptimize(n->rank);
    }
  };
  std::vector<std::unique_ptr<Sink>> sinks;
  for (std::size_t i = 0; i < subscribers; ++i) {
    sinks.push_back(std::make_unique<Sink>());
    broker.subscribe("bench", *sinks.back());
  }
  pubsub::Publisher publisher(broker, "p");
  publisher.advertise("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(publisher.publish("bench", 3.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(subscribers));
}
BENCHMARK(BM_BrokerFanOut)->Arg(1)->Arg(16)->Arg(256);

void BM_ProxyNotification(benchmark::State& state) {
  sim::Simulator sim;
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);
  core::TopicConfig config;
  config.options.max = 8;
  config.policy = core::PolicyConfig::buffer(16);
  proxy.add_topic("bench", config);
  Rng rng(2);
  std::uint64_t id = 0;
  for (auto _ : state) {
    proxy.on_notification(make_notification(++id, rng.next_double() * 5.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProxyNotification);

void BM_ProxyRead(benchmark::State& state) {
  sim::Simulator sim;
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);
  core::TopicConfig config;
  config.options.max = 8;
  config.policy = core::PolicyConfig::on_demand();
  proxy.add_topic("bench", config);
  core::LastHopSession session(proxy, channel);
  Rng rng(3);
  std::uint64_t id = 0;
  for (auto _ : state) {
    // Keep the prefetch queue populated so reads always have work to do.
    for (int i = 0; i < 8; ++i) {
      proxy.on_notification(make_notification(++id, rng.next_double() * 5.0));
    }
    benchmark::DoNotOptimize(session.user_read("bench"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProxyRead);

void BM_FullYearPairedExperiment(benchmark::State& state) {
  workload::ScenarioConfig config;
  config.event_frequency = 32.0;
  config.user_frequency = 2.0;
  config.max = 8;
  config.outage_fraction = 0.5;
  config.horizon = kYear;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiments::compare_policies(
        config, core::PolicyConfig::buffer(16), ++seed));
  }
}
BENCHMARK(BM_FullYearPairedExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
// main() comes from benchmark::benchmark_main.
