// Section 4 future-work ablation: proxy replication. A proxy crash at
// mid-year either (a) cold-restarts an unreplicated proxy — every queued
// notification and all adaptive state is lost — or (b) fails over to a warm
// replica that received the same feed and asynchronously learned what was
// forwarded. The replication latency controls the duplicate-transfer window.
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/replication.h"
#include "metrics/inefficiency.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "workload/trace.h"

using namespace waif;

namespace {

struct CrashResult {
  metrics::ReadSet read_ids;
  std::uint64_t duplicates = 0;
  std::uint64_t transfers = 0;
};

/// Replays the trace with a ReplicatedProxy; the active replica crashes at
/// mid-year. `replication_latency` < 0 selects the unreplicated variant: a
/// single proxy whose state is wiped at the crash instant (cold restart).
CrashResult run_with_crash(const workload::ScenarioConfig& config,
                           const workload::Trace& trace,
                           SimDuration replication_latency) {
  sim::Simulator sim;
  pubsub::Broker broker(sim, std::max<std::size_t>(trace.arrivals.size(), 1));
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});

  core::TopicConfig topic_config;
  topic_config.options.max = config.max;
  topic_config.options.threshold = config.threshold;
  topic_config.policy = core::PolicyConfig::buffer(64);

  // Crash minutes after the first link recovery past mid-year: the proxy
  // has just flushed a burst of forwards, so records are still in flight —
  // the worst case for asynchronous replication.
  const SimTime crash_at =
      std::min(trace.outages.next_up(trace.horizon / 2) + 5 * kMinute,
               trace.horizon - kDay);
  CrashResult result;

  if (replication_latency >= 0) {
    core::ReplicationConfig replication;
    replication.replication_latency = replication_latency;
    core::ReplicatedProxy proxy(sim, link, device, replication);
    proxy.add_topic(experiments::kTopic, topic_config);
    broker.subscribe(experiments::kTopic, proxy, topic_config.options);
    link.apply_schedule(trace.outages);

    pubsub::Publisher publisher(broker, "workload");
    publisher.advertise(experiments::kTopic);
    for (const workload::Arrival& arrival : trace.arrivals) {
      sim.schedule_at(arrival.time, [&publisher, arrival] {
        publisher.publish(experiments::kTopic, arrival.rank, arrival.lifetime);
      });
    }
    for (SimTime read_at : trace.reads) {
      sim.schedule_at(read_at, [&proxy, &result] {
        for (const auto& n : proxy.user_read(experiments::kTopic)) {
          result.read_ids.insert(n->id.value);
        }
      });
    }
    sim.schedule_at(crash_at, [&proxy] { proxy.fail_active(); });
    sim.run_until(trace.horizon);
  } else {
    core::SimDeviceChannel channel(link, device);
    core::Proxy proxy(sim, channel);
    proxy.attach_to_link(link);
    proxy.add_topic(experiments::kTopic, topic_config);
    device.set_topic_threshold(experiments::kTopic, config.threshold);
    broker.subscribe(experiments::kTopic, proxy, topic_config.options);
    core::LastHopSession session(proxy, channel);
    link.apply_schedule(trace.outages);

    pubsub::Publisher publisher(broker, "workload");
    publisher.advertise(experiments::kTopic);
    for (const workload::Arrival& arrival : trace.arrivals) {
      sim.schedule_at(arrival.time, [&publisher, arrival] {
        publisher.publish(experiments::kTopic, arrival.rank, arrival.lifetime);
      });
    }
    for (SimTime read_at : trace.reads) {
      sim.schedule_at(read_at, [&session, &result] {
        for (const auto& n : session.user_read(experiments::kTopic)) {
          result.read_ids.insert(n->id.value);
        }
      });
    }
    // Cold restart: the proxy forgets everything it had queued.
    sim.schedule_at(crash_at, [&proxy, topic_config] {
      proxy.remove_topic(experiments::kTopic);
      proxy.add_topic(experiments::kTopic, topic_config);
    });
    sim.run_until(trace.horizon);
  }

  result.duplicates = device.stats().duplicate_receives;
  result.transfers = link.stats().downlink_messages;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("ablate_replication");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv, "Section 4 ablation — proxy replication vs cold restart"));
  // A no-overflow regime (capacity 64/day vs 32/day produced): the user
  // would eventually read everything, so state lost in a cold restart is
  // pure loss. Heavy outages make the proxy's queues deep at crash time.
  workload::ScenarioConfig config = bench::paper_config();
  config.user_frequency = 4.0;
  config.max = 16;
  config.outage_fraction = 0.9;
  config.mean_outage = kDay;

  const workload::Trace trace = workload::generate_trace(config, 1);
  const experiments::RunOutcome baseline =
      experiments::run_trace(trace, config, core::PolicyConfig::online());

  metrics::Table table(
      "Ablation (Section 4) — proxy crash after a mid-year reconnection "
      "burst: warm replica vs cold restart\n(event frequency = 32/day, user "
      "frequency = 4/day, Max = 16 — no overflow; outage 90%, mean one day; "
      "buffer prefetch 64)",
      "variant", {"loss %", "duplicate transfers", "total transfers"});

  struct Variant {
    const char* name;
    SimDuration latency;  // < 0 = unreplicated cold restart
  };
  const Variant variants[] = {
      {"no failure (replicated, 50ms)", -2},  // sentinel handled below
      {"replica, latency 50ms", 50 * kMillisecond},
      {"replica, latency 1min", kMinute},
      {"replica, latency 1h", kHour},
      {"cold restart (no replica)", -1},
  };
  // Variants are independent replays over the shared (read-only) trace;
  // submit one job per variant, results in table order.
  const std::size_t variant_count = std::size(variants);
  const std::vector<CrashResult> results =
      runner.map(variant_count, [&variants, &config, &trace](std::size_t i) {
        const Variant& variant = variants[i];
        CrashResult result;
        if (variant.latency == -2) {
          // Reference: the same replicated setup without any crash. Reuse
          // the single-proxy runner (equivalent when nothing fails).
          const experiments::RunOutcome outcome = experiments::run_trace(
              trace, config, core::PolicyConfig::buffer(64));
          result.read_ids = outcome.read_ids;
          result.duplicates = outcome.device.duplicate_receives;
          result.transfers = outcome.link.downlink_messages;
        } else {
          result = run_with_crash(config, trace, variant.latency);
        }
        return result;
      });
  for (std::size_t i = 0; i < variant_count; ++i) {
    table.add_row(variants[i].name,
                  {metrics::loss_percent(baseline.read_ids,
                                         results[i].read_ids),
                   static_cast<double>(results[i].duplicates),
                   static_cast<double>(results[i].transfers)});
  }
  bench::report_sweep(runner, report);

  bench::emit(table,
              "failover keeps loss at the no-failure level; the duplicate "
              "count grows with the replication latency (the asynchrony "
              "window). A cold restart wipes the proxy's queues: everything "
              "not yet forwarded at the crash is gone for good, so loss "
              "jumps.");
  return 0;
}
