// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/time.h"
#include "experiments/runner.h"
#include "metrics/table.h"
#include "workload/scenario.h"

namespace waif::bench {

/// The paper's default workload: event frequency 32/day, one virtual year.
inline workload::ScenarioConfig paper_config() {
  workload::ScenarioConfig config;
  config.event_frequency = 32.0;
  config.horizon = kYear;
  return config;
}

/// Mean waste over `seeds` paired runs.
inline double mean_waste(const workload::ScenarioConfig& config,
                         const core::PolicyConfig& policy,
                         std::uint64_t seeds = 3) {
  return experiments::evaluate(config, policy, seeds).waste_percent;
}

/// Mean loss over `seeds` paired runs.
inline double mean_loss(const workload::ScenarioConfig& config,
                        const core::PolicyConfig& policy,
                        std::uint64_t seeds = 3) {
  return experiments::evaluate(config, policy, seeds).loss_percent;
}

/// Prints the table followed by the paper's expected shape, so the output is
/// self-checking by eye.
inline void emit(const metrics::Table& table, const std::string& expectation) {
  table.print(std::cout);
  std::cout << "\nPaper expectation: " << expectation << "\n" << std::endl;
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

}  // namespace waif::bench
