// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench submits its sweep through experiments::ParallelRunner; the
// shared --jobs flag picks the worker count (0 = all hardware threads) and
// report_sweep() prints the wall-clock speedup against the
// sequential-equivalent cost of the same jobs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.h"
#include "common/flags.h"
#include "common/time.h"
#include "experiments/parallel_runner.h"
#include "experiments/runner.h"
#include "metrics/table.h"
#include "workload/scenario.h"

namespace waif::bench {

/// The paper's default workload: event frequency 32/day, one virtual year.
inline workload::ScenarioConfig paper_config() {
  workload::ScenarioConfig config;
  config.event_frequency = 32.0;
  config.horizon = kYear;
  return config;
}

/// Parses the shared bench flags and returns the requested worker count for
/// experiments::ParallelRunner (0 = all hardware threads). Exits the process
/// on --help or a malformed flag. `default_jobs` lets timing-sensitive
/// benches (scale_proxies) default to one worker.
inline std::size_t parse_jobs(int argc, const char* const* argv,
                              const std::string& description,
                              std::int64_t default_jobs = 0) {
  std::int64_t jobs = default_jobs;
  FlagSet flags(description);
  flags.add_int("jobs", &jobs,
                "sweep worker threads (0 = all hardware threads)", 0, 4096);
  if (!flags.parse(argc - 1, argv + 1)) std::exit(1);
  return static_cast<std::size_t>(jobs);
}

/// Prints the accounting of the runner's most recent sweep: the observed
/// wall clock, the sequential-equivalent cost (sum of per-job run times),
/// the resulting speedup, and the process-wide CPU/peak-RSS triple so every
/// bench reports the same resource line. All of it stays on "sweep:" lines,
/// which the determinism diffs strip.
inline void report_sweep(const experiments::ParallelRunner& runner) {
  const experiments::SweepStats& stats = runner.last_stats();
  if (stats.jobs == 0) return;
  std::printf(
      "sweep: %zu jobs on %zu thread(s) — wall %.2f s, "
      "sequential-equivalent %.2f s, speedup %.2fx\n"
      "sweep: process — cpu %.2f s, peak rss %.1f MiB\n\n",
      stats.jobs, stats.threads, stats.wall_seconds, stats.task_seconds,
      stats.speedup(), process_cpu_seconds(),
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));
}

/// report_sweep() that additionally folds the sweep's accounting into the
/// bench's BENCH_<name>.json.
inline void report_sweep(const experiments::ParallelRunner& runner,
                         BenchReport& report,
                         const std::string& label = "main") {
  report.note_sweep(runner.last_stats(), label);
  report_sweep(runner);
}

/// Prints the table followed by the paper's expected shape, so the output is
/// self-checking by eye.
inline void emit(const metrics::Table& table, const std::string& expectation) {
  table.print(std::cout);
  std::cout << "\nPaper expectation: " << expectation << "\n" << std::endl;
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

}  // namespace waif::bench
