// Chaos harness for overload protection: sweeps publisher storm x device
// stall x queue budget, replaying every cell through the deterministic
// parallel runner. Each cell is one overload run
// (experiments/overload_runner.h): three topics over the reliable channel,
// optionally swamped by bursts of extra publishes, optionally ACK-starved by
// stall windows, with the budgets/watermarks/breaker armed per cell. The
// sweep asserts the overload invariants:
//
//   1. the all-off cell is behavior-identical to the unprotected baseline,
//      and persistence itself is behavior-invisible (digest equality);
//   2. with a budget armed, sampled queue occupancy never exceeds it — per
//      topic and proxy-wide — however hard the storm pushes;
//   3. every shed event is journaled, sheds strictly follow the canonical
//      rank-then-expiration order, and replaying the WAL from scratch
//      rebuilds per-topic images byte-identical to the live proxy (no
//      unjournaled drops);
//   4. without a budget nothing is ever shed or rejected;
//   5. stall windows trip the circuit breaker; the cooldown probes
//      half-open and the device's recovery recloses it.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "experiments/overload_runner.h"

using namespace waif;

namespace {

struct OverloadCell {
  bool storm = false;
  bool stall = false;
  std::size_t budget = 0;  // per-topic; 0 = overload protection off
};

experiments::OverloadPlan cell_plan(const OverloadCell& cell,
                                    const workload::ScenarioConfig& scenario) {
  experiments::OverloadPlan plan;
  plan.scenario = scenario;
  // Same transport everywhere, so budget/storm/stall are the only axes: the
  // breaker is armed in every cell but only ACK starvation can trip it. The
  // short retry ladder (3 attempts, 2-minute cap) makes a starved transfer
  // exhaust within minutes, so a stall window sees several exhaustions.
  plan.channel.breaker_failure_threshold = 3;
  plan.channel.max_attempts = 3;
  plan.channel.max_backoff = 2 * kMinute;
  if (cell.storm) {
    plan.storm_bursts = 6;
    plan.storm_size = 48;
    plan.storm_spacing = kHour;
  }
  if (cell.stall) {
    plan.stall_count = 2;
    plan.stall_duration = 3 * kHour;
  }
  if (cell.budget > 0) {
    plan.overload.topic_queue_budget = cell.budget;
    plan.overload.proxy_queue_budget = 2 * cell.budget;
    plan.overload.admission_high = 2 * cell.budget;
    plan.overload.admission_low = cell.budget;
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("chaos_overload");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv,
      "Overload chaos sweep — publisher storm x device stall x queue budget "
      "over the protected last-hop proxy"));

  const workload::ScenarioConfig scenario = experiments::overload_scenario();

  // The unprotected, undisturbed run: its digest is what the all-off cell
  // must reproduce.
  experiments::OverloadPlan base_plan;
  base_plan.scenario = scenario;
  base_plan.channel.breaker_failure_threshold = 3;
  base_plan.channel.max_attempts = 3;
  base_plan.channel.max_backoff = 2 * kMinute;
  const experiments::OverloadOutcome baseline =
      experiments::run_overload_plan(base_plan);
  WAIF_CHECK(baseline.shed == 0);
  WAIF_CHECK(baseline.admission_rejects == 0);
  WAIF_CHECK(baseline.recovery_image_match);

  // Invariant 1b: the persistence-off control reads identically.
  experiments::OverloadPlan off_plan = base_plan;
  off_plan.persist = false;
  const experiments::OverloadOutcome off =
      experiments::run_overload_plan(off_plan);
  WAIF_CHECK(off.read_digest == baseline.read_digest);
  WAIF_CHECK(off.total_read == baseline.total_read);

  const bool storms[] = {false, true};
  const bool stalls[] = {false, true};
  const std::size_t budgets[] = {0, 32, 8};

  std::vector<OverloadCell> cells;
  for (bool storm : storms) {
    for (bool stall : stalls) {
      for (std::size_t budget : budgets) {
        cells.push_back(OverloadCell{storm, stall, budget});
      }
    }
  }

  const std::vector<experiments::OverloadOutcome> results = runner.map(
      cells.size(), [&cells, &scenario](std::size_t i) {
        return experiments::run_overload_plan(cell_plan(cells[i], scenario));
      });

  metrics::Table table(
      "Overload chaos sweep — storms, device stalls and queue budgets over "
      "the protected proxy\n(4-day three-topic runs over the reliable "
      "channel; storm = 6x48-event bursts, stall = two 3-hour ACK-starvation "
      "windows;\nbudget = per-topic cap, proxy-wide cap 2x, admission "
      "watermarks at budget/2x-budget)",
      "storm / stall / budget",
      {"reads", "shed", "shed%", "rejects", "peakQ", "peakT", "trips",
       "requeued"});

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const OverloadCell& cell = cells[i];
    const experiments::OverloadOutcome& result = results[i];

    // Invariant 3: sheds are journaled, canonically ordered, and the WAL
    // replay matches the live image byte for byte.
    WAIF_CHECK(result.shed_order_violations == 0);
    WAIF_CHECK(result.journaled_sheds == result.shed);
    WAIF_CHECK(result.recovery_image_match);

    if (cell.budget > 0) {
      // Invariant 2: sampled occupancy is bounded by the armed budgets.
      WAIF_CHECK(result.peak_topic_queued <= cell.budget);
      WAIF_CHECK(result.peak_queued <= 2 * cell.budget);
    } else {
      // Invariant 4: no budget, no drops.
      WAIF_CHECK(result.shed == 0);
      WAIF_CHECK(result.admission_rejects == 0);
    }
    // Invariant 1: the all-off cell is the baseline, bit for bit.
    if (!cell.storm && !cell.stall && cell.budget == 0) {
      WAIF_CHECK(result.read_digest == baseline.read_digest);
      WAIF_CHECK(result.total_read == baseline.total_read);
    }
    // Invariant 5: ACK starvation trips the breaker; a healthy device
    // never does.
    if (cell.stall) {
      WAIF_CHECK(result.breaker_trips > 0);
      WAIF_CHECK(result.breaker_closes > 0);
    } else {
      WAIF_CHECK(result.breaker_trips == 0);
    }

    char label[64];
    std::snprintf(label, sizeof label, "%-5s / %-5s / %2zu",
                  cell.storm ? "storm" : "calm",
                  cell.stall ? "stall" : "none", cell.budget);
    table.add_row(label,
                  {static_cast<double>(result.total_read),
                   static_cast<double>(result.shed), result.shed_pct,
                   static_cast<double>(result.admission_rejects),
                   static_cast<double>(result.peak_queued),
                   static_cast<double>(result.peak_topic_queued),
                   static_cast<double>(result.breaker_trips),
                   static_cast<double>(result.requeued)});
  }

  bench::report_sweep(runner, report);
  bench::emit(
      table,
      "all invariants held (the binary aborts otherwise). Budgeted cells "
      "keep peak occupancy within the cap — rank-then-expiration shedding "
      "and the admission watermarks absorb the storm — while every shed is "
      "journaled and the WAL replay matches the live image byte for byte; "
      "unbudgeted cells never drop; stall cells trip the circuit breaker "
      "into hold-only mode and reclose it once ACKs flow again.");
  return 0;
}
