// Figure 6: waste and loss due to expirations at different prefetch
// expiration thresholds (event frequency = 32/day, user frequency = 2/day,
// network outage 90% of the time). One pair of curves per mean message
// expiration interval: 4.2 hours, 2.8 days, 5.7 days, 11 days, 54 days.
//
// Expected shape (paper): per expiration interval, waste is high at short
// thresholds (frivolous soon-to-expire messages get prefetched) and drops to
// ~0 as the threshold grows; loss starts at ~0 and climbs to a plateau (too
// high a threshold = no prefetching at all). When the lifetime is an order
// of magnitude above the 8-hour read interval, a gap opens where both are
// small — and the read interval itself (28800 s) lies inside that gap.
#include <string>
#include <vector>

#include "bench_util.h"
#include "pubsub/subscription.h"

using namespace waif;

int main(int argc, char** argv) {
  bench::BenchReport report("fig6_expiration_threshold");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv, "fig6 — prefetch expiration threshold sweep"));
  // The paper's five expiration intervals (seconds).
  const std::vector<double> expirations = {15360, 245760, 491520, 983040,
                                           3932160};
  const std::vector<double> thresholds = {64,     256,    1024,   4096,
                                          16384,  65536,  262144, 1048576};

  std::vector<std::string> series;
  series.reserve(expirations.size());
  for (double expiration : expirations) {
    series.push_back(bench::fmt("exp=%.0fs", expiration) + " (" +
                     format_duration(seconds(expiration)) + ")");
  }

  metrics::Table waste_table(
      "Figure 6 (waste curves) — Percent of wasted messages vs prefetch "
      "expiration threshold (seconds)\n(event frequency = 32/day, user "
      "frequency = 2/day, Max = infinity, 90% outage, buffer prefetching)",
      "thr(s)", series);
  metrics::Table loss_table(
      "Figure 6 (loss curves) — Percent of lost messages vs prefetch "
      "expiration threshold (seconds)",
      "thr(s)", series);

  std::vector<experiments::EvalPoint> points;
  for (double threshold : thresholds) {
    for (double expiration : expirations) {
      experiments::EvalPoint point;
      point.scenario = bench::paper_config();
      point.scenario.user_frequency = 2.0;
      point.scenario.max = pubsub::kUnlimitedMax;
      point.scenario.mean_expiration = seconds(expiration);
      point.scenario.outage_fraction = 0.9;
      point.policy =
          core::PolicyConfig::buffer(/*limit=*/64,
                                     /*expiration_threshold=*/
                                     seconds(threshold));
      point.seeds = 2;
      points.push_back(point);
    }
  }
  const std::vector<experiments::Aggregate> aggregates =
      runner.evaluate_many(points);

  std::size_t cursor = 0;
  for (double threshold : thresholds) {
    std::vector<double> waste_row;
    std::vector<double> loss_row;
    for (std::size_t s = 0; s < expirations.size(); ++s) {
      waste_row.push_back(aggregates[cursor].waste_percent);
      loss_row.push_back(aggregates[cursor].loss_percent);
      ++cursor;
    }
    waste_table.add_row(bench::fmt("%.0f", threshold), waste_row);
    loss_table.add_row(bench::fmt("%.0f", threshold), loss_row);
  }
  bench::report_sweep(runner, report);

  bench::emit(waste_table,
              "each curve starts high (short thresholds admit soon-expiring "
              "messages to the prefetch queue) and drops sharply to ~0 once "
              "the threshold passes the expiration scale.");
  bench::emit(loss_table,
              "each curve starts at ~0 and climbs to a plateau once the "
              "threshold disables prefetching. For the 4.2h lifetime no "
              "threshold keeps both metrics low; from ~5.7 days up, a gap "
              "opens that contains the 28800 s read interval — the paper's "
              "recommended automatic threshold.");
  return 0;
}
