// Unified chaos sweep: hundreds of composed fault schedules — link faults,
// outages, storage faults, machine crashes with WAL-tail damage, replica
// kills, shed storms and device stalls, all in one run — each checked
// against the full invariant monitor (experiments/invariant_monitor.h):
//
//   1. breaker state-machine legality on every observer callback;
//   2. monotone sequence/ACK/delivery counters at every checkpoint;
//   3. queue occupancy bounded by the armed budgets (settled samples);
//   4. no admission rejects unless admission control is armed;
//   5. live-vs-recovered image equality on clean WAL lineage (a crashed
//      fault-free copy of the backend replays to exactly the live state);
//   6. no expired event ever reaches the transport or the device;
//   7. no duplicate user reads without a failover/requeue to explain them;
//   8. the on-disk image stays fsck-recoverable through everything.
//
// Every schedule must come out clean (the binary aborts otherwise), and
// the whole sweep is byte-identical at any --jobs, so the CI determinism
// diff covers the entire composed-fault surface.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "experiments/chaos_orchestrator.h"
#include "experiments/chaos_schedule.h"

using namespace waif;

namespace {

struct ChaosCell {
  double intensity = 0.35;
  std::size_t faults = 8;
  bool allow_crashes = true;
  std::uint64_t seed = 1;
};

experiments::ChaosSchedule cell_schedule(const ChaosCell& cell) {
  experiments::ChaosDrawConfig draw;
  draw.intensity = cell.intensity;
  draw.faults = cell.faults;
  draw.allow_crashes = cell.allow_crashes;
  return experiments::draw_chaos(draw, cell.seed);
}

struct GroupTotals {
  std::uint64_t runs = 0;
  std::uint64_t applied = 0;
  std::uint64_t crashes = 0;
  std::uint64_t failovers = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejects = 0;
  std::uint64_t trips = 0;
  std::uint64_t image_checks = 0;
  std::uint64_t reads = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("chaos_unified");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv,
      "Unified chaos sweep — composed fault schedules (link x storage x "
      "crash x storm x stall) against the replicated, persistent, "
      "overload-protected last hop, every run checked by the invariant "
      "monitor"));

  // 6 draw shapes x 36 seeds = 216 composed schedules. The gentle tier
  // stays below the shedding regime, the fierce tier composes everything.
  struct Shape {
    const char* label;
    double intensity;
    std::size_t faults;
    bool allow_crashes;
  };
  const Shape shapes[] = {
      {"gentle  /  6 / net-only", 0.15, 6, false},
      {"gentle  /  6 / +crash", 0.15, 6, true},
      {"medium  /  8 / net-only", 0.35, 8, false},
      {"medium  /  8 / +crash", 0.35, 8, true},
      {"fierce  / 12 / net-only", 0.60, 12, false},
      {"fierce  / 12 / +crash", 0.60, 12, true},
  };
  constexpr std::uint64_t kSeedsPerShape = 36;

  std::vector<ChaosCell> cells;
  for (std::size_t s = 0; s < std::size(shapes); ++s) {
    for (std::uint64_t seed = 1; seed <= kSeedsPerShape; ++seed) {
      cells.push_back(ChaosCell{shapes[s].intensity, shapes[s].faults,
                                shapes[s].allow_crashes,
                                (s + 1) * 1000 + seed});
    }
  }

  const std::vector<experiments::ChaosOutcome> results =
      runner.map(cells.size(), [&cells](std::size_t i) {
        return experiments::run_chaos(cell_schedule(cells[i]));
      });

  metrics::Table table(
      "Unified chaos sweep — composed fault schedules vs the invariant "
      "monitor\n(3-day runs, two replicas, WAL persistence, budgets + "
      "admission + breaker armed; every cell must pass all invariants)",
      "intensity / faults / kinds",
      {"runs", "faults", "crashes", "failovers", "shed", "rejects", "trips",
       "img-chk", "reads"});

  std::uint64_t total_violations = 0;
  std::uint64_t total_image_checks = 0;
  for (std::size_t s = 0; s < std::size(shapes); ++s) {
    GroupTotals totals;
    for (std::uint64_t k = 0; k < kSeedsPerShape; ++k) {
      const experiments::ChaosOutcome& outcome =
          results[s * kSeedsPerShape + k];
      // The invariant gate: one violating schedule fails the whole bench.
      WAIF_CHECK(outcome.ok());
      total_violations += outcome.violations.size();
      total_image_checks += outcome.image_checks;
      ++totals.runs;
      totals.applied += outcome.faults_applied;
      totals.crashes += outcome.crashes;
      totals.failovers += outcome.failovers;
      totals.shed += outcome.shed;
      totals.rejects += outcome.admission_rejects;
      totals.trips += outcome.breaker_trips;
      totals.image_checks += outcome.image_checks;
      totals.reads += outcome.total_read;
    }
    table.add_row(shapes[s].label,
                  {static_cast<double>(totals.runs),
                   static_cast<double>(totals.applied),
                   static_cast<double>(totals.crashes),
                   static_cast<double>(totals.failovers),
                   static_cast<double>(totals.shed),
                   static_cast<double>(totals.rejects),
                   static_cast<double>(totals.trips),
                   static_cast<double>(totals.image_checks),
                   static_cast<double>(totals.reads)});
  }

  report.metric("schedules", static_cast<double>(cells.size()));
  report.metric("violations", static_cast<double>(total_violations));
  report.metric("image_checks", static_cast<double>(total_image_checks));

  bench::report_sweep(runner, report);
  bench::emit(
      table,
      "every composed schedule passes the full invariant monitor (the "
      "binary aborts otherwise): breaker transitions stay legal, channel "
      "counters stay monotone, queues respect the armed budgets, no "
      "expired event reaches the device, the durable image replays to "
      "exactly the live state on clean WAL lineage, and fsck stays "
      "recoverable through crashes, torn tails and bit flips. Crash rows "
      "show failovers and restarts; fierce rows show shedding and breaker "
      "trips without a single invariant violation.");
  report.write();
  return 0;
}
