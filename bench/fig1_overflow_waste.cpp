// Figure 1: waste due to overflow at different values of Max and user
// frequency (event frequency = 32/day, on-line forwarding, no expirations,
// no outages).
//
// Expected shape (paper): waste% ~= 100 * (1 - user_frequency*Max/32); a
// user reading 32 messages once a day wastes nothing, Max=4 at uf=1 wastes
// ~88%.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace waif;

int main(int argc, char** argv) {
  bench::BenchReport report("fig1_overflow_waste");
  const std::vector<double> user_frequencies = {0.25, 0.5, 1, 2, 4, 8, 16, 32};
  const std::vector<int> max_values = {1, 2, 4, 8, 16, 32, 64};
  experiments::ParallelRunner runner(
      bench::parse_jobs(argc, argv, "fig1 — waste due to overflow"));

  std::vector<std::string> series;
  series.reserve(user_frequencies.size());
  for (double uf : user_frequencies) series.push_back(bench::fmt("uf=%g", uf));

  metrics::Table table(
      "Figure 1 — Percent of wasted messages vs Max, one series per user "
      "frequency\n(event frequency = 32/day, on-line forwarding)",
      "Max", series);

  // Row-major grid of sweep cells, submitted as one batch.
  std::vector<experiments::EvalPoint> points;
  for (int max : max_values) {
    for (double uf : user_frequencies) {
      experiments::EvalPoint point;
      point.scenario = bench::paper_config();
      point.scenario.user_frequency = uf;
      point.scenario.max = max;
      point.policy = core::PolicyConfig::online();
      point.seeds = 2;
      points.push_back(point);
    }
  }
  const std::vector<experiments::Aggregate> aggregates =
      runner.evaluate_many(points);

  std::size_t cursor = 0;
  for (int max : max_values) {
    std::vector<double> row;
    row.reserve(user_frequencies.size());
    for (std::size_t s = 0; s < user_frequencies.size(); ++s) {
      row.push_back(aggregates[cursor++].waste_percent);
    }
    table.add_row(std::to_string(max), row);
  }
  bench::report_sweep(runner, report);

  bench::emit(table,
              "waste ~ 100*(1 - uf*Max/32), clamped at 0: ~88% at uf=1,Max=4; "
              "0% once uf*Max >= 32. Curves fall with Max and with uf.");

  // Print the closed-form residuals as a quick self-check.
  std::printf("Closed-form residual check (|measured - formula|, percentage "
              "points):\n");
  double worst = 0.0;
  for (std::size_t r = 0; r < max_values.size(); ++r) {
    for (std::size_t s = 0; s < user_frequencies.size(); ++s) {
      const double formula =
          std::max(0.0, 100.0 * (1.0 - user_frequencies[s] *
                                           max_values[r] / 32.0));
      worst = std::max(worst, std::abs(table.value(r, s) - formula));
    }
  }
  std::printf("  worst residual: %.1f points\n", worst);
  return 0;
}
