// Section 4 future-work ablation: cooperation among multiple devices of one
// user. Two devices with independent last-hop outage schedules subscribe to
// the same topic; the user reads on the phone, which tops up from the
// laptop's cache over an ad-hoc network. Compared against the same user with
// the phone alone, and against the on-line baseline for loss accounting.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/device_group.h"
#include "metrics/inefficiency.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "workload/trace.h"

using namespace waif;

namespace {

struct GroupResult {
  metrics::ReadSet read_ids;
  std::uint64_t transfers = 0;   // last-hop downlink, both devices
  std::uint64_t peer_reads = 0;  // served over the ad-hoc network
  std::uint64_t forwarded_unique = 0;
};

/// Replays the trace with `devices` cooperating devices (1 = lone phone).
/// The second device gets an independent outage schedule (different seed).
GroupResult run_group(const workload::ScenarioConfig& config,
                      const workload::Trace& trace, int devices,
                      std::uint64_t seed) {
  sim::Simulator sim;
  pubsub::Broker broker(sim, std::max<std::size_t>(trace.arrivals.size(), 1));
  core::DeviceGroup group(sim);

  struct Node {
    std::unique_ptr<net::Link> link;
    std::unique_ptr<device::Device> device;
    std::unique_ptr<core::SimDeviceChannel> channel;
    std::unique_ptr<core::Proxy> proxy;
  };
  std::vector<Node> nodes;

  core::TopicConfig topic_config;
  topic_config.options.max = config.max;
  topic_config.options.threshold = config.threshold;
  topic_config.policy = core::PolicyConfig::buffer(16);

  for (int d = 0; d < devices; ++d) {
    Node node;
    node.link = std::make_unique<net::Link>(sim);
    node.device = std::make_unique<device::Device>(
        sim, DeviceId{static_cast<std::uint64_t>(d + 1)});
    node.channel =
        std::make_unique<core::SimDeviceChannel>(*node.link, *node.device);
    node.proxy = std::make_unique<core::Proxy>(sim, *node.channel);
    node.proxy->attach_to_link(*node.link);
    node.proxy->add_topic(experiments::kTopic, topic_config);
    node.device->set_topic_threshold(experiments::kTopic,
                                     config.threshold);
    broker.subscribe(experiments::kTopic, *node.proxy, topic_config.options);
    if (d == 0) {
      node.link->apply_schedule(trace.outages);
    } else {
      // An independent outage pattern for the second device.
      Rng rng(seed * 7919 + static_cast<std::uint64_t>(d));
      node.link->apply_schedule(workload::generate_outages(config, rng));
    }
    nodes.push_back(std::move(node));
  }
  for (Node& node : nodes) group.add_member(*node.proxy, *node.channel);

  pubsub::Publisher publisher(broker, "workload");
  publisher.advertise(experiments::kTopic);
  for (const workload::Arrival& arrival : trace.arrivals) {
    sim.schedule_at(arrival.time, [&publisher, arrival] {
      publisher.publish(experiments::kTopic, arrival.rank, arrival.lifetime);
    });
  }

  GroupResult result;
  for (SimTime read_at : trace.reads) {
    sim.schedule_at(read_at, [&group, &result] {
      for (const auto& n : group.user_read(0, experiments::kTopic)) {
        result.read_ids.insert(n->id.value);
      }
    });
  }
  sim.run_until(trace.horizon);

  for (Node& node : nodes) {
    result.transfers += node.link->stats().downlink_messages;
    result.forwarded_unique +=
        node.proxy->topic(experiments::kTopic)->forwarded_unique();
  }
  result.peer_reads = group.stats().peer_reads;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("ablate_multidevice");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv, "Section 4 ablation — cooperating devices"));
  const std::vector<double> outages = {0.5, 0.7, 0.9};
  metrics::Table table(
      "Ablation (Section 4) — one device vs two cooperating devices\n"
      "(event frequency = 32/day, user frequency = 2/day, Max = 8, buffer "
      "prefetch 16;\nthe second device has an independent outage schedule "
      "with the same downtime fraction)",
      "outage",
      {"solo loss", "duo loss", "solo waste", "duo waste", "peer reads/day"});

  // Each outage level is one independent replay triple (baseline, solo,
  // duo) — submit them through the runner; rows come back in order.
  const std::vector<std::vector<double>> rows =
      runner.map(outages.size(), [&outages](std::size_t i) {
        workload::ScenarioConfig config = bench::paper_config();
        config.user_frequency = 2.0;
        config.max = 8;
        config.outage_fraction = outages[i];
        // Long outages (mean two days) are where cooperation matters: the
        // phone performs several reads inside one outage and runs its
        // 16-message buffer dry; the laptop, on an independent schedule,
        // often synced more recently.
        config.mean_outage = 2 * kDay;

        const std::uint64_t seed = 1;
        const workload::Trace trace = workload::generate_trace(config, seed);
        const experiments::RunOutcome baseline = experiments::run_trace(
            trace, config, core::PolicyConfig::online());

        const GroupResult solo = run_group(config, trace, 1, seed);
        const GroupResult duo = run_group(config, trace, 2, seed);

        auto waste = [](const GroupResult& r) {
          if (r.forwarded_unique == 0) return 0.0;
          return 100.0 *
                 static_cast<double>(r.forwarded_unique - r.read_ids.size()) /
                 static_cast<double>(r.forwarded_unique);
        };
        return std::vector<double>{
            metrics::loss_percent(baseline.read_ids, solo.read_ids),
            metrics::loss_percent(baseline.read_ids, duo.read_ids),
            waste(solo), waste(duo),
            static_cast<double>(duo.peer_reads) / to_days(config.horizon)};
      });
  for (std::size_t i = 0; i < outages.size(); ++i) {
    table.add_row(bench::fmt("%.1f", outages[i]), rows[i]);
  }
  bench::report_sweep(runner, report);

  bench::emit(table,
              "the second cache cuts loss: reads during the phone's long "
              "outages are served by the laptop (peer reads/day > 0). The "
              "flip side is the laptop's own subscription: most of its "
              "prefetched copies are never pulled, so the duo's aggregate "
              "waste rises. Realizing the paper's full hypothesis (both "
              "metrics down) would need a cooperative policy that partitions "
              "the stream between the devices instead of mirroring it.");
  return 0;
}
