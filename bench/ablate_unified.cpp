// Section 3.5 ablation: the unified Figure-7 algorithm (adaptive prefetch
// limit + adaptive expiration threshold) against the static policies across
// mixed regimes — overflow, outages, expirations, rank drops, and all of
// them at once. The adaptive policy needs no tuning yet should track the
// best static configuration in every regime.
#include <string>
#include <vector>

#include "bench_util.h"

using namespace waif;

namespace {

struct Regime {
  const char* name;
  workload::ScenarioConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("ablate_unified");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv, "Section 3.5 ablation — unified adaptive algorithm"));
  std::vector<Regime> regimes;
  {
    Regime overflow{"overflow only", bench::paper_config()};
    overflow.config.user_frequency = 2.0;
    overflow.config.max = 8;
    regimes.push_back(overflow);

    Regime outage{"outage 50%", bench::paper_config()};
    outage.config.user_frequency = 2.0;
    outage.config.max = 8;
    outage.config.outage_fraction = 0.5;
    regimes.push_back(outage);

    Regime outage_heavy{"outage 90%", bench::paper_config()};
    outage_heavy.config.user_frequency = 2.0;
    outage_heavy.config.max = 8;
    outage_heavy.config.outage_fraction = 0.9;
    regimes.push_back(outage_heavy);

    Regime expiry{"expiry 5.7d + outage 90%", bench::paper_config()};
    expiry.config.user_frequency = 2.0;
    expiry.config.max = 8;
    expiry.config.outage_fraction = 0.9;
    expiry.config.mean_expiration = seconds(491520.0);
    regimes.push_back(expiry);

    Regime drops{"rank drops 20% + outage 50%", bench::paper_config()};
    drops.config.user_frequency = 2.0;
    // Max 6 keeps the above-threshold stream (16/day at threshold 2.5) in
    // the overflow regime like the other rows; Max 8 would sit exactly at
    // the critical point where backlogs never drain.
    drops.config.max = 6;
    drops.config.threshold = 2.5;
    drops.config.outage_fraction = 0.5;
    drops.config.rank_drop_fraction = 0.2;
    regimes.push_back(drops);

    Regime everything{"all combined", bench::paper_config()};
    everything.config.user_frequency = 2.0;
    everything.config.max = 8;
    everything.config.threshold = 2.0;
    everything.config.outage_fraction = 0.7;
    everything.config.mean_expiration = seconds(491520.0);
    everything.config.rank_drop_fraction = 0.1;
    regimes.push_back(everything);
  }

  const std::vector<std::string> series = {
      "online waste",  "online loss",  "on-demand waste", "on-demand loss",
      "buffer16 waste", "buffer16 loss", "adaptive waste", "adaptive loss"};

  metrics::Table table(
      "Ablation (Section 3.5) — the unified adaptive algorithm across mixed "
      "regimes\n(event frequency = 32/day, user frequency = 2/day, one "
      "virtual year, 2 seeds)",
      "regime", series);

  const std::vector<core::PolicyConfig> policies = {
      core::PolicyConfig::online(), core::PolicyConfig::on_demand(),
      core::PolicyConfig::buffer(16), core::PolicyConfig::adaptive()};

  std::vector<experiments::EvalPoint> points;
  for (const Regime& regime : regimes) {
    for (const core::PolicyConfig& policy : policies) {
      experiments::EvalPoint point;
      point.scenario = regime.config;
      point.policy = policy;
      point.seeds = 2;
      points.push_back(point);
    }
  }
  const std::vector<experiments::Aggregate> aggregates =
      runner.evaluate_many(points);

  std::size_t cursor = 0;
  for (const Regime& regime : regimes) {
    std::vector<double> row;
    for (std::size_t p = 0; p < policies.size(); ++p, ++cursor) {
      row.push_back(aggregates[cursor].waste_percent);
      row.push_back(aggregates[cursor].loss_percent);
    }
    table.add_row(regime.name, row);
  }
  bench::report_sweep(runner, report);

  bench::emit(table,
              "online: ~50% waste / 0 loss; on-demand: 0 waste / heavy loss "
              "under outages; buffer16 and adaptive: both metrics down to a "
              "few percentage points in every regime, with adaptive needing "
              "no hand-set limit or threshold.");
  return 0;
}
