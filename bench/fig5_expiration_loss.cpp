// Figure 5: loss due to expirations with different values of user frequency
// and expiration periods from 16 seconds to ~3 days (event frequency =
// 32/day, network outage 95% of the time, pure on-demand forwarding).
//
// Expected shape (paper): a hump — negligible loss for very short lifetimes
// (events expire before anyone could read them under either policy), rising
// in the middle (events expire during outages, unrecoverable on-demand),
// dropping again for long lifetimes (events survive until connectivity
// returns).
#include <string>
#include <vector>

#include "bench_util.h"
#include "pubsub/subscription.h"

using namespace waif;

int main(int argc, char** argv) {
  bench::BenchReport report("fig5_expiration_loss");
  experiments::ParallelRunner runner(
      bench::parse_jobs(argc, argv, "fig5 — loss due to expirations"));
  const std::vector<double> user_frequencies = {1, 2, 4, 8, 16, 32, 64};
  const std::vector<double> expirations = {16,   64,    256,   1024,
                                           4096, 16384, 65536, 262144};

  std::vector<std::string> series;
  series.reserve(user_frequencies.size());
  for (double uf : user_frequencies) series.push_back(bench::fmt("uf=%g", uf));

  metrics::Table table(
      "Figure 5 — Percent of lost messages vs mean expiration time (seconds), "
      "one series per user frequency\n(event frequency = 32/day, Max = "
      "infinity, network down 95% of the time, pure on-demand)",
      "exp(s)", series);

  std::vector<experiments::EvalPoint> points;
  for (double expiration : expirations) {
    for (double uf : user_frequencies) {
      experiments::EvalPoint point;
      point.scenario = bench::paper_config();
      point.scenario.user_frequency = uf;
      point.scenario.max = pubsub::kUnlimitedMax;
      point.scenario.mean_expiration = seconds(expiration);
      point.scenario.outage_fraction = 0.95;
      point.policy = core::PolicyConfig::on_demand();
      point.seeds = 2;
      points.push_back(point);
    }
  }
  const std::vector<experiments::Aggregate> aggregates =
      runner.evaluate_many(points);

  std::size_t cursor = 0;
  for (double expiration : expirations) {
    std::vector<double> row;
    row.reserve(user_frequencies.size());
    for (std::size_t s = 0; s < user_frequencies.size(); ++s) {
      row.push_back(aggregates[cursor++].loss_percent);
    }
    table.add_row(bench::fmt("%.0f", expiration), row);
  }
  bench::report_sweep(runner, report);

  bench::emit(table,
              "a hump: low loss at very short lifetimes, peak when lifetimes "
              "are comparable to outage/read intervals, declining at long "
              "lifetimes as events survive the outages.");
  return 0;
}
