// Figure 5: loss due to expirations with different values of user frequency
// and expiration periods from 16 seconds to ~3 days (event frequency =
// 32/day, network outage 95% of the time, pure on-demand forwarding).
//
// Expected shape (paper): a hump — negligible loss for very short lifetimes
// (events expire before anyone could read them under either policy), rising
// in the middle (events expire during outages, unrecoverable on-demand),
// dropping again for long lifetimes (events survive until connectivity
// returns).
#include <string>
#include <vector>

#include "bench_util.h"
#include "pubsub/subscription.h"

using namespace waif;

int main() {
  const std::vector<double> user_frequencies = {1, 2, 4, 8, 16, 32, 64};
  const std::vector<double> expirations = {16,   64,    256,   1024,
                                           4096, 16384, 65536, 262144};

  std::vector<std::string> series;
  series.reserve(user_frequencies.size());
  for (double uf : user_frequencies) series.push_back(bench::fmt("uf=%g", uf));

  metrics::Table table(
      "Figure 5 — Percent of lost messages vs mean expiration time (seconds), "
      "one series per user frequency\n(event frequency = 32/day, Max = "
      "infinity, network down 95% of the time, pure on-demand)",
      "exp(s)", series);

  for (double expiration : expirations) {
    std::vector<double> row;
    row.reserve(user_frequencies.size());
    for (double uf : user_frequencies) {
      workload::ScenarioConfig config = bench::paper_config();
      config.user_frequency = uf;
      config.max = pubsub::kUnlimitedMax;
      config.mean_expiration = seconds(expiration);
      config.outage_fraction = 0.95;
      row.push_back(bench::mean_loss(config, core::PolicyConfig::on_demand(),
                                     /*seeds=*/2));
    }
    table.add_row(bench::fmt("%.0f", expiration), row);
  }

  bench::emit(table,
              "a hump: low loss at very short lifetimes, peak when lifetimes "
              "are comparable to outage/read intervals, declining at long "
              "lifetimes as events survive the outages.");
  return 0;
}
