// Section 3.2 ablation: the paper's two prefetching candidates head-to-head.
// "We found that both approaches were good at reducing waste and loss to a
// few percentage points, but the buffer-based approach turned out to be more
// effective and, incidentally, simpler."
#include <string>
#include <vector>

#include "bench_util.h"

using namespace waif;

int main() {
  const std::vector<double> outages = {0.1, 0.3, 0.5, 0.7, 0.9};

  const std::vector<std::string> series = {
      "buffer16 waste", "buffer16 loss",   "rate-dyn waste", "rate-dyn loss",
      "rate-0.5 waste", "rate-0.5 loss",   "adaptive waste", "adaptive loss"};

  metrics::Table table(
      "Ablation (Section 3.2) — buffer-based vs rate-based vs adaptive "
      "prefetching\n(event frequency = 32/day, user frequency = 2/day, Max = "
      "8, one virtual year)",
      "outage", series);

  for (double outage : outages) {
    workload::ScenarioConfig config = bench::paper_config();
    config.user_frequency = 2.0;
    config.max = 8;
    config.outage_fraction = outage;

    const experiments::Aggregate buffer = experiments::evaluate(
        config, core::PolicyConfig::buffer(16), /*seeds=*/3);
    // Dynamic ratio: learned from live reads only (it starves when the link
    // is rarely up); oracle ratio: the true consumption/production ratio
    // uf*Max/ef = 0.5, as in the paper's "with a ratio of 0.2, forwarding
    // takes place at the arrival of every 5th message".
    const experiments::Aggregate rate_dynamic = experiments::evaluate(
        config, core::PolicyConfig::rate(0.0), /*seeds=*/3);
    const experiments::Aggregate rate_oracle = experiments::evaluate(
        config, core::PolicyConfig::rate(0.5), /*seeds=*/3);
    const experiments::Aggregate adaptive = experiments::evaluate(
        config, core::PolicyConfig::adaptive(), /*seeds=*/3);

    table.add_row(bench::fmt("%.1f", outage),
                  {buffer.waste_percent, buffer.loss_percent,
                   rate_dynamic.waste_percent, rate_dynamic.loss_percent,
                   rate_oracle.waste_percent, rate_oracle.loss_percent,
                   adaptive.waste_percent, adaptive.loss_percent});
  }

  bench::emit(table,
              "both prefetchers keep waste and loss within a few percentage "
              "points; the buffer-based one (and the adaptive policy built "
              "on it) is at least as good as the rate-based one across "
              "outage levels.");
  return 0;
}
