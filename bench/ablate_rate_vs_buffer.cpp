// Section 3.2 ablation: the paper's two prefetching candidates head-to-head.
// "We found that both approaches were good at reducing waste and loss to a
// few percentage points, but the buffer-based approach turned out to be more
// effective and, incidentally, simpler."
#include <string>
#include <vector>

#include "bench_util.h"

using namespace waif;

int main(int argc, char** argv) {
  bench::BenchReport report("ablate_rate_vs_buffer");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv, "Section 3.2 ablation — prefetching policies head-to-head"));
  const std::vector<double> outages = {0.1, 0.3, 0.5, 0.7, 0.9};

  const std::vector<std::string> series = {
      "buffer16 waste", "buffer16 loss",   "rate-dyn waste", "rate-dyn loss",
      "rate-0.5 waste", "rate-0.5 loss",   "adaptive waste", "adaptive loss"};

  metrics::Table table(
      "Ablation (Section 3.2) — buffer-based vs rate-based vs adaptive "
      "prefetching\n(event frequency = 32/day, user frequency = 2/day, Max = "
      "8, one virtual year)",
      "outage", series);

  // Dynamic ratio: learned from live reads only (it starves when the link
  // is rarely up); oracle ratio: the true consumption/production ratio
  // uf*Max/ef = 0.5, as in the paper's "with a ratio of 0.2, forwarding
  // takes place at the arrival of every 5th message".
  const std::vector<core::PolicyConfig> policies = {
      core::PolicyConfig::buffer(16), core::PolicyConfig::rate(0.0),
      core::PolicyConfig::rate(0.5), core::PolicyConfig::adaptive()};

  std::vector<experiments::EvalPoint> points;
  for (double outage : outages) {
    for (const core::PolicyConfig& policy : policies) {
      experiments::EvalPoint point;
      point.scenario = bench::paper_config();
      point.scenario.user_frequency = 2.0;
      point.scenario.max = 8;
      point.scenario.outage_fraction = outage;
      point.policy = policy;
      point.seeds = 3;
      points.push_back(point);
    }
  }
  const std::vector<experiments::Aggregate> aggregates =
      runner.evaluate_many(points);

  std::size_t cursor = 0;
  for (double outage : outages) {
    std::vector<double> row;
    for (std::size_t p = 0; p < policies.size(); ++p, ++cursor) {
      row.push_back(aggregates[cursor].waste_percent);
      row.push_back(aggregates[cursor].loss_percent);
    }
    table.add_row(bench::fmt("%.1f", outage), row);
  }
  bench::report_sweep(runner, report);

  bench::emit(table,
              "both prefetchers keep waste and loss within a few percentage "
              "points; the buffer-based one (and the adaptive policy built "
              "on it) is at least as good as the rate-based one across "
              "outage levels.");
  return 0;
}
