// Figure 2: loss due to overflow at different levels of network availability
// (event frequency = 32/day, Max = 8, pure on-demand forwarding vs the
// on-line baseline).
//
// Expected shape (paper): loss grows with the outage fraction toward ~100%,
// then drops back to 0 at total outage (both policies equally powerless).
#include <string>
#include <vector>

#include "bench_util.h"

using namespace waif;

int main() {
  const std::vector<double> user_frequencies = {0.25, 0.5, 1, 2,
                                                4,    8,   16, 32, 64};
  const std::vector<double> outages = {0.0, 0.1, 0.2, 0.3, 0.4,  0.5,
                                       0.6, 0.7, 0.8, 0.9, 0.95, 1.0};

  std::vector<std::string> series;
  series.reserve(user_frequencies.size());
  for (double uf : user_frequencies) series.push_back(bench::fmt("uf=%g", uf));

  metrics::Table table(
      "Figure 2 — Percent of lost messages vs network outage fraction, one "
      "series per user frequency\n(event frequency = 32/day, Max = 8, pure "
      "on-demand forwarding)",
      "outage", series);

  for (double outage : outages) {
    std::vector<double> row;
    row.reserve(user_frequencies.size());
    for (double uf : user_frequencies) {
      workload::ScenarioConfig config = bench::paper_config();
      config.user_frequency = uf;
      config.max = 8;
      config.outage_fraction = outage;
      row.push_back(bench::mean_loss(config, core::PolicyConfig::on_demand(),
                                     /*seeds=*/2));
    }
    table.add_row(bench::fmt("%.2f", outage), row);
  }

  bench::emit(table,
              "loss grows with the outage fraction toward just below 100%, "
              "then drops to 0 at outage = 1.0 where the on-line baseline "
              "reads nothing either.");
  return 0;
}
