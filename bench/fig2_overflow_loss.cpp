// Figure 2: loss due to overflow at different levels of network availability
// (event frequency = 32/day, Max = 8, pure on-demand forwarding vs the
// on-line baseline).
//
// Expected shape (paper): loss grows with the outage fraction toward ~100%,
// then drops back to 0 at total outage (both policies equally powerless).
#include <string>
#include <vector>

#include "bench_util.h"

using namespace waif;

int main(int argc, char** argv) {
  bench::BenchReport report("fig2_overflow_loss");
  const std::vector<double> user_frequencies = {0.25, 0.5, 1, 2,
                                                4,    8,   16, 32, 64};
  const std::vector<double> outages = {0.0, 0.1, 0.2, 0.3, 0.4,  0.5,
                                       0.6, 0.7, 0.8, 0.9, 0.95, 1.0};
  experiments::ParallelRunner runner(
      bench::parse_jobs(argc, argv, "fig2 — loss due to overflow"));

  std::vector<std::string> series;
  series.reserve(user_frequencies.size());
  for (double uf : user_frequencies) series.push_back(bench::fmt("uf=%g", uf));

  metrics::Table table(
      "Figure 2 — Percent of lost messages vs network outage fraction, one "
      "series per user frequency\n(event frequency = 32/day, Max = 8, pure "
      "on-demand forwarding)",
      "outage", series);

  std::vector<experiments::EvalPoint> points;
  for (double outage : outages) {
    for (double uf : user_frequencies) {
      experiments::EvalPoint point;
      point.scenario = bench::paper_config();
      point.scenario.user_frequency = uf;
      point.scenario.max = 8;
      point.scenario.outage_fraction = outage;
      point.policy = core::PolicyConfig::on_demand();
      point.seeds = 2;
      points.push_back(point);
    }
  }
  const std::vector<experiments::Aggregate> aggregates =
      runner.evaluate_many(points);

  std::size_t cursor = 0;
  for (double outage : outages) {
    std::vector<double> row;
    row.reserve(user_frequencies.size());
    for (std::size_t s = 0; s < user_frequencies.size(); ++s) {
      row.push_back(aggregates[cursor++].loss_percent);
    }
    table.add_row(bench::fmt("%.2f", outage), row);
  }
  bench::report_sweep(runner, report);

  bench::emit(table,
              "loss grows with the outage fraction toward just below 100%, "
              "then drops to 0 at outage = 1.0 where the on-line baseline "
              "reads nothing either.");
  return 0;
}
