// Chaos harness for proxy durability: sweeps crash point x sync policy x
// snapshot interval x injected storage fault, replaying every cell through
// the deterministic parallel runner. Each cell is one crash-consistent
// last-hop run (experiments/recovery_runner.h): the proxy journals every
// mutation through storage::ProxyPersistence, is killed once the WAL reaches
// the cell's record index, and is rebuilt from the newest valid snapshot
// plus the WAL-tail replay. The sweep asserts the durability invariants:
//
//   1. persistence off and persistence on (no faults, no crash) produce the
//      same read digest — journaling is behavior-invisible;
//   2. with write-ahead syncs and no storage faults, the digest after
//      (crash, recover, continue) equals the uninterrupted run's digest —
//      recovery is exact;
//   3. under batched syncs the crash loses at most the unsynced window;
//   4. the write-ahead discipline never yields a duplicate user read, even
//      when fsyncs fail (deliveries are refused, not lost track of);
//   5. whatever the injected fault left on disk, fsck still finds a
//      recoverable image (a valid snapshot or a repairable WAL).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "experiments/recovery_runner.h"

using namespace waif;

namespace {

enum class SyncMode { kWriteAhead, kBatched };
enum class FaultKind { kNone, kFsync, kTorn };

struct RecoveryCell {
  SyncMode sync = SyncMode::kWriteAhead;
  std::uint64_t snapshot_interval = 64;
  FaultKind fault = FaultKind::kNone;
  double crash_fraction = 0.0;  // of the baseline's WAL record count; 0 = no crash
};

const char* sync_name(SyncMode mode) {
  return mode == SyncMode::kWriteAhead ? "ahead" : "batch";
}

const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kFsync: return "fsync";
    case FaultKind::kTorn: return "torn";
  }
  return "?";
}

experiments::RecoveryPlan cell_plan(const RecoveryCell& cell,
                                    const workload::ScenarioConfig& scenario,
                                    std::uint64_t baseline_records) {
  experiments::RecoveryPlan plan;
  plan.scenario = scenario;
  plan.persistence.snapshot_interval = cell.snapshot_interval;
  if (cell.sync == SyncMode::kBatched) {
    plan.persistence.sync_interval = 32;
    plan.persistence.sync_on_forward = false;
  }
  switch (cell.fault) {
    case FaultKind::kNone:
      break;
    case FaultKind::kFsync:
      plan.storage_fault.fsync_failure_probability = 0.2;
      break;
    case FaultKind::kTorn:
      plan.storage_fault.torn_write_probability = 1.0;
      plan.storage_fault.bit_flip_probability = 0.5;
      break;
  }
  if (cell.crash_fraction > 0.0) {
    plan.crash_at_record = static_cast<std::int64_t>(
        cell.crash_fraction * static_cast<double>(baseline_records));
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("chaos_recovery");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv,
      "Durability chaos sweep — crash point x sync policy x snapshot "
      "interval x injected storage fault over the persistent last-hop "
      "proxy"));

  workload::ScenarioConfig scenario = experiments::recovery_scenario();
  scenario.horizon = 12 * kDay;

  // The uninterrupted no-fault run: its digest is what every exact-tier
  // cell must reproduce, and its record count is what the crash fractions
  // index into. (Without faults the sync policy cannot change behavior, so
  // one baseline covers both sync modes.)
  experiments::RecoveryPlan base_plan;
  base_plan.scenario = scenario;
  const experiments::RecoveryOutcome baseline =
      experiments::run_recovery_plan(base_plan);
  WAIF_CHECK(baseline.records_logged > 0);
  WAIF_CHECK(baseline.crashes == 0);

  // Invariant 1: the persistence-off control reads identically.
  experiments::RecoveryPlan off_plan = base_plan;
  off_plan.persist = false;
  const experiments::RecoveryOutcome off =
      experiments::run_recovery_plan(off_plan);
  WAIF_CHECK(off.read_digest == baseline.read_digest);
  WAIF_CHECK(off.total_read == baseline.total_read);

  const SyncMode sync_modes[] = {SyncMode::kWriteAhead, SyncMode::kBatched};
  const std::uint64_t snapshot_intervals[] = {32, 256};
  const FaultKind faults[] = {FaultKind::kNone, FaultKind::kFsync,
                              FaultKind::kTorn};
  const double crash_fractions[] = {0.0, 0.5};

  std::vector<RecoveryCell> cells;
  for (SyncMode sync : sync_modes) {
    for (std::uint64_t snap : snapshot_intervals) {
      for (FaultKind fault : faults) {
        for (double crash : crash_fractions) {
          cells.push_back(RecoveryCell{sync, snap, fault, crash});
        }
      }
    }
  }

  const std::uint64_t records = baseline.records_logged;
  const std::vector<experiments::RecoveryOutcome> results = runner.map(
      cells.size(), [&cells, &scenario, records](std::size_t i) {
        return experiments::run_recovery_plan(
            cell_plan(cells[i], scenario, records));
      });

  metrics::Table table(
      "Durability chaos sweep — crash-point recovery under sync policies, "
      "snapshot intervals and storage faults\n(12-day three-topic runs; "
      "ahead = write-ahead fsync per record, batch = 32-record sync window; "
      "crash at half the baseline's WAL;\nΔreads vs the uninterrupted "
      "no-fault run)",
      "sync / snap / fault / crash",
      {"reads", "Δreads", "dupes", "refused", "lost win", "replayed",
       "repairs"});

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const RecoveryCell& cell = cells[i];
    const experiments::RecoveryOutcome& result = results[i];
    const bool crashed = result.crashes > 0;
    const bool write_ahead = cell.sync == SyncMode::kWriteAhead;

    // Invariant 5: the on-disk image is always recoverable.
    WAIF_CHECK(result.fsck_recoverable);
    // Invariant 2: write-ahead syncs + clean storage = exact recovery.
    if (write_ahead && cell.fault == FaultKind::kNone) {
      WAIF_CHECK(result.read_digest == baseline.read_digest);
      WAIF_CHECK(result.total_read == baseline.total_read);
      if (crashed) WAIF_CHECK(result.lost_window == 0);
    }
    // No crash + no fault is behavior-neutral for either sync policy.
    if (!crashed && cell.fault == FaultKind::kNone) {
      WAIF_CHECK(result.read_digest == baseline.read_digest);
    }
    // Invariant 3: a crash can only cost the unsynced window (each lost
    // record hides at most one read of up to `max` events; the in-flight
    // slack on either side of the crash instant adds two more windows).
    if (crashed && cell.fault == FaultKind::kNone) {
      const std::int64_t loss = static_cast<std::int64_t>(baseline.total_read) -
                                static_cast<std::int64_t>(result.total_read);
      WAIF_CHECK(loss <= static_cast<std::int64_t>(
                             (result.lost_window + 2) *
                             static_cast<std::uint64_t>(scenario.max)));
    }
    // Invariant 4: duplicates require losing a *forward* record, which the
    // write-ahead discipline makes impossible — crash or no crash, faults
    // or not. (Batched cells may legitimately re-deliver.)
    if (write_ahead || !crashed) {
      WAIF_CHECK(result.duplicate_user_reads == 0);
    }
    // A crash was actually injected where the cell asked for one.
    if (cell.crash_fraction > 0.0) WAIF_CHECK(crashed);

    char label[64];
    std::snprintf(label, sizeof label, "%s / %3llu / %-5s / %.1f",
                  sync_name(cell.sync),
                  static_cast<unsigned long long>(cell.snapshot_interval),
                  fault_name(cell.fault), cell.crash_fraction);
    const std::int64_t delta = static_cast<std::int64_t>(result.total_read) -
                               static_cast<std::int64_t>(baseline.total_read);
    table.add_row(label,
                  {static_cast<double>(result.total_read),
                   static_cast<double>(delta),
                   static_cast<double>(result.duplicate_user_reads),
                   static_cast<double>(result.forward_refusals),
                   static_cast<double>(result.lost_window),
                   static_cast<double>(result.replayed),
                   static_cast<double>(result.wal_repairs)});
  }

  bench::report_sweep(runner, report);
  bench::emit(
      table,
      "all invariants held (the binary aborts otherwise). Write-ahead cells "
      "with clean storage recover exactly (Δreads 0) at any crash point and "
      "snapshot interval; batched cells lose at most the 32-record unsynced "
      "window; fsync faults show up as refused deliveries, never as "
      "duplicates; torn writes and bit flips are truncated away by the CRC "
      "scan (repairs column) and the image stays recoverable.");
  return 0;
}
