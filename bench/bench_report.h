// Machine-readable bench reports: every bench binary emits one
// BENCH_<name>.json next to its table output, so the repo can commit a
// perf trajectory that scripts (and the CI regression gate) can diff.
//
// The schema is deliberately flat and stable:
//
//   {
//     "schema": 1,
//     "name": "fig1_overflow_waste",
//     "wall_seconds": 1.84,            // steady-clock span of the report
//     "cpu_seconds": 1.79,             // getrusage user+system, whole process
//     "peak_rss_bytes": 27262976,      // ru_maxrss, whole process
//     "events_fired": 1183744,         // sim::total_events_fired() delta
//     "events_per_sec": 643339.1,      // events_fired / wall_seconds
//     "alloc": { "counted": true, "allocations": 91, "bytes": 5824 },
//     "metrics": { "calendar_vs_heap_speedup": 1.62, ... },  // bench-specific
//     "sweeps": [ { "label": "main", "jobs": 56, "threads": 1,
//                   "wall_seconds": 1.8, "task_seconds": 1.7,
//                   "speedup": 0.97 } ]
//   }
//
// wall/cpu/rss and the alloc block are measured between BenchReport's
// construction and write(), so a bench that wants to exclude setup can
// construct the report late. "alloc.counted" is false when the binary was
// linked without waif::alloc_hooks — the numbers are then meaningless zeros
// and consumers must ignore them.
//
// Files land in $WAIF_BENCH_JSON_DIR (default: the working directory). The
// committed copies at the repo root are refreshed by running the benches
// with WAIF_BENCH_JSON_DIR=<repo root>; see EXPERIMENTS.md. write() also
// prints a one-line confirmation prefixed "sweep:" so the determinism diffs
// (which canonicalize with `grep -v '^sweep:'`) ignore it.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/alloc_stats.h"
#include "experiments/parallel_runner.h"
#include "sim/simulator.h"

namespace waif::bench {

/// User + system CPU seconds consumed by the whole process so far.
inline double process_cpu_seconds() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  const auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

/// Peak resident set size of the process, in bytes (Linux reports KiB).
inline std::uint64_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)),
        start_(std::chrono::steady_clock::now()),
        start_cpu_(process_cpu_seconds()),
        start_events_(sim::total_events_fired()),
        start_allocs_(alloc_stats::allocation_count()),
        start_alloc_bytes_(alloc_stats::allocation_bytes()) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    if (!written_) write();
  }

  /// Records a bench-specific scalar under "metrics".
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Records one ParallelRunner sweep's accounting under "sweeps".
  void note_sweep(const experiments::SweepStats& stats,
                  const std::string& label = "main") {
    if (stats.jobs == 0) return;
    sweeps_.push_back(Sweep{label, stats});
  }

  /// Emits BENCH_<name>.json into $WAIF_BENCH_JSON_DIR (default ".").
  /// Idempotent: the destructor calls it only if nobody else did.
  void write() {
    written_ = true;
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    const double cpu = process_cpu_seconds() - start_cpu_;
    const std::uint64_t events = sim::total_events_fired() - start_events_;
    const std::uint64_t rss = peak_rss_bytes();

    const char* dir = std::getenv("WAIF_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir && *dir ? dir : ".") + "/BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
      return;
    }

    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"schema\": 1,\n");
    std::fprintf(out, "  \"name\": \"%s\",\n", name_.c_str());
    std::fprintf(out, "  \"wall_seconds\": %.6f,\n", wall);
    std::fprintf(out, "  \"cpu_seconds\": %.6f,\n", cpu);
    std::fprintf(out, "  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(rss));
    std::fprintf(out, "  \"events_fired\": %llu,\n",
                 static_cast<unsigned long long>(events));
    std::fprintf(out, "  \"events_per_sec\": %.1f,\n",
                 wall > 0.0 ? static_cast<double>(events) / wall : 0.0);
    std::fprintf(
        out, "  \"alloc\": { \"counted\": %s, \"allocations\": %llu, "
             "\"bytes\": %llu },\n",
        alloc_stats::hooks_installed() ? "true" : "false",
        static_cast<unsigned long long>(alloc_stats::allocation_count() -
                                        start_allocs_),
        static_cast<unsigned long long>(alloc_stats::allocation_bytes() -
                                        start_alloc_bytes_));

    std::fprintf(out, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(out, "%s\n    \"%s\": %.6g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(out, "%s},\n", metrics_.empty() ? " " : "\n  ");

    std::fprintf(out, "  \"sweeps\": [");
    for (std::size_t i = 0; i < sweeps_.size(); ++i) {
      const Sweep& sweep = sweeps_[i];
      std::fprintf(
          out,
          "%s\n    { \"label\": \"%s\", \"jobs\": %zu, \"threads\": %zu, "
          "\"wall_seconds\": %.6f, \"task_seconds\": %.6f, "
          "\"speedup\": %.3f }",
          i == 0 ? "" : ",", sweep.label.c_str(), sweep.stats.jobs,
          sweep.stats.threads, sweep.stats.wall_seconds,
          sweep.stats.task_seconds, sweep.stats.speedup());
    }
    std::fprintf(out, "%s]\n", sweeps_.empty() ? " " : "\n  ");
    std::fprintf(out, "}\n");
    std::fclose(out);

    std::printf("sweep: wrote %s — wall %.2f s, cpu %.2f s, peak rss "
                "%.1f MiB, %.3g events/s\n",
                path.c_str(), wall, cpu,
                static_cast<double>(rss) / (1024.0 * 1024.0),
                wall > 0.0 ? static_cast<double>(events) / wall : 0.0);
  }

 private:
  struct Sweep {
    std::string label;
    experiments::SweepStats stats;
  };

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  double start_cpu_;
  std::uint64_t start_events_;
  std::uint64_t start_allocs_;
  std::uint64_t start_alloc_bytes_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<Sweep> sweeps_;
  bool written_ = false;
};

}  // namespace waif::bench
