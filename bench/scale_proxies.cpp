// Proxy scalability (the paper closes with "Scalability of proxies is of
// interest, too"): how the infrastructure-side cost grows with the number of
// devices served and with the number of topics per device.
//
// Two sweeps over one simulated day of traffic (event frequency 32/day per
// topic, buffer prefetching):
//   1. one topic fanned out to N proxies/devices;
//   2. one proxy managing T topics for a single device.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"
#include "workload/trace.h"

using namespace waif;

namespace {

struct Node {
  std::unique_ptr<net::Link> link;
  std::unique_ptr<device::Device> device;
  std::unique_ptr<core::SimDeviceChannel> channel;
  std::unique_ptr<core::Proxy> proxy;
};

Node make_node(sim::Simulator& sim, std::uint64_t id) {
  Node node;
  node.link = std::make_unique<net::Link>(sim);
  node.device = std::make_unique<device::Device>(sim, DeviceId{id});
  node.channel =
      std::make_unique<core::SimDeviceChannel>(*node.link, *node.device);
  node.proxy = std::make_unique<core::Proxy>(sim, *node.channel);
  return node;
}

double run_fan_out(std::size_t proxies) {
  sim::Simulator sim;
  pubsub::Broker broker(sim);

  core::TopicConfig config;
  config.options.max = 8;
  config.policy = core::PolicyConfig::buffer(16);

  std::vector<Node> nodes;
  nodes.reserve(proxies);
  for (std::size_t i = 0; i < proxies; ++i) {
    Node node = make_node(sim, i + 1);
    node.proxy->add_topic("hot", config);
    broker.subscribe("hot", *node.proxy, config.options);
    nodes.push_back(std::move(node));
  }

  pubsub::Publisher publisher(broker, "p");
  publisher.advertise("hot");
  workload::ScenarioConfig scenario;
  scenario.horizon = kDay;
  scenario.event_frequency = 512.0;  // a busy day
  // Constant substream: every row of the fan-out sweep replays the same
  // arrival stream, so N (the independent variable) is the only thing that
  // changes between rows.
  Rng rng = experiments::job_rng(/*sweep_seed=*/1, /*job_index=*/0);
  const auto arrivals = workload::generate_arrivals(scenario, rng);
  for (const auto& arrival : arrivals) {
    sim.schedule_at(arrival.time, [&publisher, arrival] {
      publisher.publish("hot", arrival.rank);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  sim.run_until(scenario.horizon);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  return static_cast<double>(arrivals.size() * proxies) / elapsed;
}

double run_many_topics(std::size_t topics) {
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  Node node = make_node(sim, 1);

  core::TopicConfig config;
  config.options.max = 8;
  config.policy = core::PolicyConfig::buffer(16);
  pubsub::Publisher publisher(broker, "p");

  std::uint64_t deliveries = 0;
  workload::ScenarioConfig scenario;
  scenario.horizon = kDay;
  scenario.event_frequency = 32.0;
  for (std::size_t t = 0; t < topics; ++t) {
    const std::string topic = "t" + std::to_string(t);
    node.proxy->add_topic(topic, config);
    broker.subscribe(topic, *node.proxy, config.options);
    publisher.advertise(topic);
    Rng rng = experiments::job_rng(/*sweep_seed=*/1, t);
    for (const auto& arrival : workload::generate_arrivals(scenario, rng)) {
      ++deliveries;
      sim.schedule_at(arrival.time, [&publisher, topic, arrival] {
        publisher.publish(topic, arrival.rank);
      });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  sim.run_until(scenario.horizon);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  return static_cast<double>(deliveries) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("scale_proxies");
  // Default to one worker: each job measures wall-clock throughput, so
  // concurrent jobs would contend for cores and depress every number.
  // --jobs>1 still works for a quick sweep where absolute rates matter less.
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv, "proxy scalability sweeps", /*default_jobs=*/1));

  metrics::Table fan_out(
      "Proxy scalability — one hot topic (512 events/day) fanned out to N "
      "proxies+devices,\none simulated day; higher is better",
      "proxies", {"deliveries/sec"});
  const std::vector<std::size_t> fan_out_sizes = {1, 10, 100, 1000};
  const std::vector<double> fan_out_rates = runner.map(
      fan_out_sizes.size(),
      [&fan_out_sizes](std::size_t i) { return run_fan_out(fan_out_sizes[i]); });
  for (std::size_t i = 0; i < fan_out_sizes.size(); ++i) {
    fan_out.add_row(std::to_string(fan_out_sizes[i]), {fan_out_rates[i]});
  }
  fan_out.set_precision(0);
  bench::report_sweep(runner, report, "fan_out");
  bench::emit(fan_out,
              "near-linear fan-out: per-delivery cost stays roughly constant "
              "as devices are added, so a proxy host scales with aggregate "
              "delivery volume, not device count.");

  metrics::Table many_topics(
      "Proxy scalability — one proxy managing T topics (32 events/day each), "
      "one device, one simulated day",
      "topics", {"deliveries/sec"});
  const std::vector<std::size_t> topic_counts = {1, 16, 128, 1024};
  const std::vector<double> topic_rates = runner.map(
      topic_counts.size(),
      [&topic_counts](std::size_t i) { return run_many_topics(topic_counts[i]); });
  for (std::size_t i = 0; i < topic_counts.size(); ++i) {
    many_topics.add_row(std::to_string(topic_counts[i]), {topic_rates[i]});
  }
  many_topics.set_precision(0);
  bench::report_sweep(runner, report, "many_topics");
  bench::emit(many_topics,
              "per-topic state is independent; throughput per delivery is "
              "flat in the number of topics (hash-map dispatch).");
  return 0;
}
