// Section 3.4 ablation: rank changes vs the delay stage. Lowering an event's
// rank after it was prefetched wastes the transfer (plus a retraction
// notice); delaying prefetch by longer than the typical detection time lets
// the proxy drop retracted events before they ever cross the last hop — at
// the price of delivery timeliness for honest events.
#include <string>
#include <vector>

#include "bench_util.h"

using namespace waif;

int main(int argc, char** argv) {
  bench::BenchReport report("ablate_rank_changes");
  experiments::ParallelRunner runner(bench::parse_jobs(
      argc, argv, "Section 3.4 ablation — rank changes vs the delay stage"));
  const std::vector<double> drop_fractions = {0.0, 0.1, 0.3, 0.5};
  const std::vector<SimDuration> delays = {0, minutes(30.0), hours(2.0),
                                           hours(8.0)};

  std::vector<std::string> series;
  for (SimDuration delay : delays) {
    const std::string label =
        delay == 0 ? "no delay" : "delay " + format_duration(delay);
    series.push_back(label + " waste");
    series.push_back(label + " notices");
  }

  metrics::Table table(
      "Ablation (Section 3.4) — waste%% and rank-drop notices per 1000 "
      "events, by delay-stage length\n(event frequency = 32/day, user "
      "frequency = 2/day, Max = 8, threshold = 2.5, buffer prefetch 16;\n"
      "rank drops detected after ~1h exponential)",
      "drop-frac", series);

  std::vector<experiments::SweepPoint> points;
  for (double drop_fraction : drop_fractions) {
    workload::ScenarioConfig config = bench::paper_config();
    config.user_frequency = 2.0;
    config.max = 8;
    config.threshold = 2.5;
    config.rank_drop_fraction = drop_fraction;
    config.mean_rank_drop_delay = hours(1.0);
    config.dropped_rank = 0.0;

    for (SimDuration delay : delays) {
      experiments::SweepPoint point;
      point.scenario = config;
      point.policy = core::PolicyConfig::buffer(16);
      point.policy.delay = delay;
      point.seed = 1;
      points.push_back(point);
    }
  }
  const std::vector<experiments::Comparison> comparisons =
      runner.compare(points);

  std::size_t cursor = 0;
  for (double drop_fraction : drop_fractions) {
    std::vector<double> row;
    for (std::size_t d = 0; d < delays.size(); ++d, ++cursor) {
      const experiments::Comparison& comparison = comparisons[cursor];
      row.push_back(comparison.waste_percent);
      row.push_back(
          1000.0 *
          static_cast<double>(comparison.policy.topic.rank_change_notices) /
          static_cast<double>(comparison.policy.topic.arrivals));
    }
    table.add_row(bench::fmt("%.1f", drop_fraction), row);
  }
  bench::report_sweep(runner, report);

  bench::emit(table,
              "with no delay, retraction notices (and the wasted transfers "
              "they retract) grow with the drop fraction; a delay stage "
              "longer than the ~1h detection time suppresses almost all of "
              "them — the user trades timeliness for quality.");
  return 0;
}
